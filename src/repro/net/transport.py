"""Asyncio TCP transport: the sim transport's contract on real sockets.

The simulator's :class:`repro.sim.transport.Transport` and this class obey
the same observable contract, asserted by the backend-agnostic conformance
suite (``tests/test_transport_conformance.py``):

* **per-peer in-order delivery** — one framed TCP connection per destination
  with a single writer coroutine, so messages to one peer arrive in send
  order (TCP then preserves it);
* **cancelable timers** — :meth:`timer_cancelable` / :meth:`at_cancelable`
  return a :class:`NetTimerHandle` with the ``active``/``cancel()``
  semantics of the engine's ``EventHandle``, driven by the event loop on the
  process-wide monotonic clock (:attr:`now`);
* **fault injection** — the same :class:`~repro.sim.transport.FaultConfig`:
  probabilistic loss and host-set partitions are applied at send time from a
  seeded generator (drops are *local* — the bytes never reach the socket —
  so a partitioned live cluster behaves like a partitioned simulated one);
* **tracing and accounting** — :class:`~repro.sim.transport.MessageTrace`
  records into any :class:`~repro.sim.transport.TraceSink`; drops are
  recorded by the sender, deliveries by the receiver (the only party that
  can observe them over a real network); byte counters reuse
  :class:`~repro.sim.transport.TransportStats` with the same traffic-class
  split.

On top of the one-way contract it adds what live deployments need:
request/response RPC (responses ride the requesting connection, so pure
clients need no listener) and a per-peer connection pool with exponential
reconnect backoff.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from collections.abc import Awaitable, Callable
from typing import Any

from repro.net.codec import CodecError, FrameDecoder, Framer
from repro.sim.transport import (
    DROPPED_DEAD,
    DROPPED_LOSS,
    DROPPED_PARTITION,
    FaultConfig,
    MessageTrace,
    TraceSink,
    TransportStats,
    traffic_class,
)

__all__ = ["NetTimerHandle", "RpcError", "RpcTimeout", "TcpTransport"]

#: one clock origin per process so every transport's ``now`` is comparable
#: (delivery latency = receiver.now - trace.sent_at within one host)
_PROCESS_T0 = time.monotonic()


def _now() -> float:
    return time.monotonic() - _PROCESS_T0


class RpcError(ConnectionError):
    """The peer could not be reached or answered with a malformed frame."""


class RpcTimeout(RpcError):
    """No response within the deadline (peer dead, partitioned, or lossy)."""


class NetTimerHandle:
    """Cancelable timer with the engine ``EventHandle`` semantics.

    ``active`` is True until the callback fires or :meth:`cancel` is called;
    cancellation is idempotent and cancel-after-fire is a no-op.
    """

    __slots__ = ("_handle", "_cell")

    def __init__(self, loop: asyncio.AbstractEventLoop, delay: float,
                 fn: Callable[..., Any], args: tuple[Any, ...]) -> None:
        cell = [True]
        self._cell = cell

        def fire() -> None:
            cell[0] = False
            fn(*args)

        self._handle = loop.call_later(max(0.0, delay), fire)

    @property
    def active(self) -> bool:
        return self._cell[0]

    def cancel(self) -> None:
        if not self._cell[0]:
            return
        self._cell[0] = False
        self._handle.cancel()


class _PeerConnection:
    """One outgoing framed connection: FIFO queue, writer task, reconnect.

    The queue preserves send order across reconnects: a message is popped
    only after it was written and drained, so a connection dropped mid-queue
    resumes with the oldest unsent message.  After ``max_attempts``
    consecutive connection failures the queued messages are dropped as
    ``dropped:dead`` (the live analogue of the simulator's crashed-node
    drop) and the backoff resets for future sends.
    """

    def __init__(self, owner: TcpTransport, addr: str) -> None:
        self.owner = owner
        self.addr = addr
        self.queue: deque[tuple[bytes, MessageTrace | None, Any]] = deque()
        self.wake = asyncio.Event()
        self.task: asyncio.Task[None] | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reader_task: asyncio.Task[None] | None = None
        self.closed = False

    def enqueue(self, frame: bytes, rec: MessageTrace | None, on_drop: Any) -> None:
        self.queue.append((frame, rec, on_drop))
        self.wake.set()
        if self.task is None or self.task.done():
            # the owner's loop, not get_running_loop(): sync callers (tests,
            # protocol code outside a coroutine) enqueue between loop runs
            self.task = self.owner._require_loop().create_task(self._run())

    async def _connect(self) -> bool:
        host, _, port = self.addr.rpartition(":")
        attempts = 0
        delay = self.owner.reconnect_base
        while not self.closed:
            try:
                self.reader, self.writer = await asyncio.open_connection(host, int(port))
                if self.reader_task is not None:
                    self.reader_task.cancel()
                self.reader_task = self.owner._require_loop().create_task(
                    self.owner._read_responses(self.reader))
                return True
            except OSError:
                attempts += 1
                if attempts >= self.owner.max_connect_attempts:
                    return False
                # seeded jitter keeps concurrent reconnects from thundering
                await asyncio.sleep(delay * (1.0 + self.owner._backoff_rng.random()))
                delay = min(delay * 2.0, self.owner.reconnect_max)
        return False

    async def _run(self) -> None:
        while not self.closed:
            if not self.queue:
                self.wake.clear()
                await self.wake.wait()
                continue
            if self.writer is None or self.writer.is_closing():
                if not await self._connect():
                    self._drop_queued()
                    continue
            frame, rec, on_drop = self.queue[0]
            try:
                assert self.writer is not None
                self.writer.write(frame)
                await self.writer.drain()
            except OSError:
                self._teardown_socket()
                continue  # retry the same message on a fresh connection
            self.queue.popleft()

    def _drop_queued(self) -> None:
        while self.queue:
            _, rec, on_drop = self.queue.popleft()
            if rec is not None:
                self.owner._drop(rec, DROPPED_DEAD, on_drop)

    def _teardown_socket(self) -> None:
        if self.reader_task is not None:
            self.reader_task.cancel()
            self.reader_task = None
        if self.writer is not None:
            self.writer.close()
            self.writer = None
        self.reader = None

    async def close(self) -> None:
        self.closed = True
        self.wake.set()
        if self.task is not None:
            self.task.cancel()
        if self.reader_task is not None:
            self.reader_task.cancel()
            self.reader_task = None
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
            self.writer = None
        self.reader = None

    @property
    def idle(self) -> bool:
        return not self.queue


class TcpTransport:
    """Live message transport over asyncio TCP (see module docstring).

    Parameters mirror the sim transport where the concept transfers:
    ``faults``/``trace``/``metrics`` behave identically; ``node_id`` and
    ``host`` identify this endpoint in traces and partition checks; ``fmt``
    picks the frame body serialisation (``"json"`` or ``"msgpack"``).
    """

    def __init__(
        self,
        node_id: int = 0,
        host: int = 0,
        faults: FaultConfig | None = None,
        trace: TraceSink | None = None,
        metrics: Any = None,
        fmt: str = "json",
        seed: int = 0,
        reconnect_base: float = 0.05,
        reconnect_max: float = 2.0,
        max_connect_attempts: int = 8,
        rpc_timeout: float = 2.0,
    ) -> None:
        self.node_id = int(node_id)
        self.host = int(host)
        self.faults = faults if faults is not None else FaultConfig()
        self.trace = trace
        self.stats = TransportStats()
        self.framer = Framer(fmt)
        self.reconnect_base = reconnect_base
        self.reconnect_max = reconnect_max
        self.max_connect_attempts = max_connect_attempts
        self.rpc_timeout = rpc_timeout
        self.addr = ""
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool: dict[str, _PeerConnection] = {}
        self._peer_hosts: dict[str, int] = {}
        self._handlers: dict[str, Callable[[Any, dict[str, Any]], None]] = {}
        self._rpc_handlers: dict[str, Callable[[Any, dict[str, Any]], Awaitable[Any]]] = {}
        self._pending: dict[int, asyncio.Future[Any]] = {}
        self._next_rid = 1
        self._closed = False
        self._client_tasks: set[asyncio.Task[None]] = set()
        # independent seeded streams, as in the sim transport: loss draws
        # must not shift when backoff jitter is consumed
        self._loss_rng = random.Random(self.faults.seed)
        self._backoff_rng = random.Random(seed ^ 0x5EED)
        self._partition_of: dict[int, int] = {}
        for gi, group in enumerate(self.faults.partitions):
            for h in group:
                self._partition_of[h] = gi
        self.attach_metrics(metrics)

    # -- lifecycle --------------------------------------------------------------

    async def start(self, bind: str = "127.0.0.1", port: int = 0,
                    listen: bool = True) -> str:
        """Bind the listener (``port=0`` = ephemeral) and return ``addr``.

        ``listen=False`` skips the server — for pure RPC clients, whose
        responses ride the outgoing connections.
        """
        self._loop = asyncio.get_running_loop()
        if listen:
            self._server = await asyncio.start_server(self._serve_client, bind, port)
            actual = self._server.sockets[0].getsockname()[1]
            self.addr = f"{bind}:{actual}"
        else:
            self.addr = f"{bind}:0"
        return self.addr

    async def close(self) -> None:
        """Abrupt shutdown: stop listening, drop every pooled connection."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (OSError, asyncio.CancelledError):  # pragma: no cover
                pass
            self._server = None
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        self._client_tasks.clear()
        for conn in list(self._pool.values()):
            await conn.close()
        self._pool.clear()
        for fut in self._pending.values():
            if not fut.done():
                fut.set_exception(RpcError("transport closed"))
        self._pending.clear()

    @property
    def now(self) -> float:
        """Monotonic seconds since process start (comparable across all
        transports in one process, mirroring the sim's shared clock)."""
        return _now()

    # -- peer table -------------------------------------------------------------

    def set_peer_host(self, addr: str, host: int) -> None:
        """Associate a peer address with its partition-host index."""
        self._peer_hosts[addr] = int(host)

    def partitioned(self, a_host: int, b_host: int) -> bool:
        if not self._partition_of:
            return False
        return self._partition_of.get(a_host, -1) != self._partition_of.get(b_host, -1)

    # -- metrics ----------------------------------------------------------------

    def attach_metrics(self, metrics: Any) -> None:
        """Same instrument set as the sim transport (shared dashboards)."""
        if metrics is not None and getattr(metrics, "enabled", False):
            self._m_sent = metrics.counter(
                "transport_sent_total", "Messages sent", ("proto",))
            self._m_delivered = metrics.counter(
                "transport_delivered_total", "Messages delivered", ("proto",))
            self._m_dropped = metrics.counter(
                "transport_dropped_total", "Messages dropped", ("proto", "reason"))
            self._m_bytes = metrics.counter(
                "transport_bytes_total", "Payload bytes sent", ("proto", "class"))
            self._m_latency = metrics.histogram(
                "transport_delivery_latency_seconds",
                "Send-to-arrival delay of delivered messages")
        else:
            self._m_sent = self._m_delivered = None
            self._m_dropped = self._m_bytes = self._m_latency = None

    # -- timers (the sim transport's cancelable-timer API) ----------------------

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            raise RuntimeError("transport not started (call start() first)")
        return loop

    def timer(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        self._require_loop().call_later(max(0.0, delay), fn, *args)

    def at(self, when: float, fn: Callable[..., Any], *args: Any) -> None:
        self.timer(when - self.now, fn, *args)

    def timer_cancelable(self, delay: float, fn: Callable[..., Any],
                         *args: Any) -> NetTimerHandle:
        return NetTimerHandle(self._require_loop(), delay, fn, args)

    def at_cancelable(self, when: float, fn: Callable[..., Any],
                      *args: Any) -> NetTimerHandle:
        return NetTimerHandle(self._require_loop(), when - self.now, fn, args)

    # -- handler registration ---------------------------------------------------

    def register_handler(self, kind: str,
                         fn: Callable[[Any, dict[str, Any]], None]) -> None:
        """One-way message handler: ``fn(payload, src_info)``."""
        self._handlers[kind] = fn

    def register_rpc(self, kind: str,
                     fn: Callable[[Any, dict[str, Any]], Awaitable[Any]]) -> None:
        """Request handler: ``await fn(payload, src_info)`` returns the reply."""
        self._rpc_handlers[kind] = fn

    # -- send path --------------------------------------------------------------

    def _src_info(self) -> dict[str, Any]:
        return {"id": self.node_id, "host": self.host, "addr": self.addr}

    def _trace_for(self, dst_addr: str, kind: str, size: int,
                   qid: int | None, attempt: int) -> MessageTrace:
        return MessageTrace(
            kind=kind,
            src=self.node_id,
            dst=self._peer_hosts.get(dst_addr, -1),
            src_host=self.host,
            dst_host=self._peer_hosts.get(dst_addr, -1),
            size=size,
            sent_at=self.now,
            qid=qid,
            attempt=attempt,
        )

    def _account_send(self, kind: str, size: int) -> None:
        self.stats.sent += 1
        cls = traffic_class(kind)
        if cls == "query":
            self.stats.query_bytes += size
        elif cls == "result":
            self.stats.result_bytes += size
        else:
            self.stats.maintenance_bytes += size
            self.stats.maintenance_messages += 1
        if self._m_sent is not None:
            proto = kind.split(":", 1)[0]
            self._m_sent.inc((proto,))
            self._m_bytes.add(size, (proto, cls))

    def _drop(self, rec: MessageTrace, status: str, on_drop: Any) -> bool:
        rec.status = status
        if status == DROPPED_DEAD:
            self.stats.dropped_dead += 1
        elif status == DROPPED_LOSS:
            self.stats.dropped_loss += 1
        else:
            self.stats.dropped_partition += 1
        if self._m_dropped is not None:
            self._m_dropped.inc((rec.kind.split(":", 1)[0], status))
        if self.trace is not None:
            self.trace.record(rec)
        if on_drop is not None:
            on_drop(rec)
        return False

    def _faulted(self, rec: MessageTrace, dst_addr: str, on_drop: Any) -> bool:
        """Apply partition/loss at send time; True when the message dies."""
        dst_host = self._peer_hosts.get(dst_addr)
        if dst_host is not None and self.partitioned(self.host, dst_host):
            self._drop(rec, DROPPED_PARTITION, on_drop)
            return True
        if self.faults.loss_rate:
            if self._loss_rng.random() < self.faults.loss_rate:
                self._drop(rec, DROPPED_LOSS, on_drop)
                return True
        return False

    def send(
        self,
        dst_addr: str,
        kind: str,
        payload: Any = None,
        *,
        size: int = 0,
        qid: int | None = None,
        attempt: int = 1,
        on_drop: Callable[[MessageTrace], None] | None = None,
    ) -> bool:
        """One-way message to ``dst_addr`` (``"ip:port"``).

        Returns ``False`` when dropped at send time (loss or partition),
        exactly like the sim transport; connection failures after send
        surface through ``on_drop`` with ``dropped:dead``.
        """
        rec = self._trace_for(dst_addr, kind, size, qid, attempt)
        self._account_send(kind, size)
        if dst_addr == self.addr:
            # local hand-off: immediate, never faulted (sim parity)
            envelope_payload = payload
            self._require_loop().call_soon(
                self._dispatch_msg, kind, envelope_payload, self._src_info(), rec)
            return True
        if self._faulted(rec, dst_addr, on_drop):
            return False
        frame = self.framer.encode({
            "v": 1, "t": "msg", "kind": kind, "src": self._src_info(),
            "qid": qid, "size": size, "attempt": attempt,
            "sent_at": rec.sent_at, "payload": payload,
        })
        self._conn(dst_addr).enqueue(frame, rec, on_drop)
        return True

    async def rpc(self, dst_addr: str, kind: str, payload: Any = None, *,
                  size: int = 0, qid: int | None = None,
                  timeout: float | None = None) -> Any:
        """Request/response to ``dst_addr``; raises :class:`RpcTimeout` when
        no reply arrives in time (dead, partitioned or lossy peer)."""
        rec = self._trace_for(dst_addr, kind, size, qid, 1)
        self._account_send(kind, size)
        if self._faulted(rec, dst_addr, None):
            raise RpcTimeout(f"rpc {kind} to {dst_addr}: dropped by fault injection")
        loop = self._require_loop()
        rid = self._next_rid
        self._next_rid += 1
        fut: asyncio.Future[Any] = loop.create_future()
        self._pending[rid] = fut
        frame = self.framer.encode({
            "v": 1, "t": "req", "kind": kind, "rid": rid, "src": self._src_info(),
            "qid": qid, "size": size, "sent_at": rec.sent_at, "payload": payload,
        })
        if dst_addr == self.addr:
            # keep the handle: the loop holds tasks weakly, and an
            # unreferenced answer task can be collected before it resolves
            # the future (its exception would surface only at exit)
            task = loop.create_task(self._answer_local(kind, payload, rid))
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        else:
            self._conn(dst_addr).enqueue(frame, None, None)
        try:
            reply = await asyncio.wait_for(fut, timeout or self.rpc_timeout)
        except TimeoutError:
            raise RpcTimeout(f"rpc {kind} to {dst_addr}: no response") from None
        finally:
            self._pending.pop(rid, None)
        if isinstance(reply, dict) and reply.get("__rpc_error__"):
            raise RpcError(f"rpc {kind} to {dst_addr}: {reply['__rpc_error__']}")
        return reply

    async def _answer_local(self, kind: str, payload: Any, rid: int) -> None:
        reply = await self._handle_request(kind, payload, self._src_info())
        fut = self._pending.get(rid)
        if fut is not None and not fut.done():
            fut.set_result(reply)

    def _conn(self, addr: str) -> _PeerConnection:
        conn = self._pool.get(addr)
        if conn is None or conn.closed:
            conn = self._pool[addr] = _PeerConnection(self, addr)
        return conn

    async def flush(self, timeout: float = 5.0) -> bool:
        """Wait until every outgoing queue drained (sends on the wire)."""
        deadline = self.now + timeout
        while self.now < deadline:
            if all(c.idle for c in self._pool.values()):
                return True
            await asyncio.sleep(0.005)
        return False

    # -- receive path -----------------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        decoder = FrameDecoder()
        response_framer = self.framer
        try:
            while not self._closed:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                try:
                    envelopes = decoder.feed(chunk)
                except CodecError:
                    break  # framing is unrecoverable: drop the connection
                for env in envelopes:
                    await self._dispatch(env, writer, response_framer)
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, env: Any, writer: asyncio.StreamWriter,
                        response_framer: Framer) -> None:
        if not isinstance(env, dict) or env.get("v") != 1:
            return
        kind = env.get("kind", "")
        src = env.get("src") or {}
        t = env.get("t")
        if t == "msg":
            rec = MessageTrace(
                kind=kind,
                src=int(src.get("id", -1)),
                dst=self.node_id,
                src_host=int(src.get("host", -1)),
                dst_host=self.host,
                size=int(env.get("size", 0)),
                sent_at=float(env.get("sent_at", 0.0)),
                qid=env.get("qid"),
                attempt=int(env.get("attempt", 1)),
            )
            self._dispatch_msg(kind, env.get("payload"), src, rec)
        elif t == "req":
            reply = await self._handle_request(kind, env.get("payload"), src)
            frame = response_framer.encode({
                "v": 1, "t": "res", "rid": env.get("rid"), "payload": reply,
            })
            try:
                writer.write(frame)
                await writer.drain()
            except OSError:
                pass

    def _dispatch_msg(self, kind: str, payload: Any, src: dict[str, Any],
                      rec: MessageTrace) -> None:
        rec.arrived_at = self.now
        rec.status = "delivered"
        self.stats.delivered += 1
        if self._m_delivered is not None:
            self._m_delivered.inc((kind.split(":", 1)[0],))
            self._m_latency.observe(max(0.0, rec.arrived_at - rec.sent_at))
        if self.trace is not None:
            self.trace.record(rec)
        handler = self._handlers.get(kind)
        if handler is not None:
            handler(payload, src)

    async def _handle_request(self, kind: str, payload: Any,
                              src: dict[str, Any]) -> Any:
        handler = self._rpc_handlers.get(kind)
        if handler is None:
            return {"__rpc_error__": f"no handler for {kind!r}"}
        try:
            return await handler(payload, src)
        except Exception as exc:  # propagate as a structured error, not a hang
            return {"__rpc_error__": f"{type(exc).__name__}: {exc}"}

    async def _read_responses(self, reader: asyncio.StreamReader) -> None:
        """Consume ``res`` frames arriving on an outgoing connection."""
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                try:
                    envelopes = decoder.feed(chunk)
                except CodecError:
                    return
                for env in envelopes:
                    if not isinstance(env, dict) or env.get("t") != "res":
                        continue
                    fut = self._pending.get(env.get("rid"))
                    if fut is not None and not fut.done():
                        fut.set_result(env.get("payload"))
        except (OSError, asyncio.CancelledError):
            return
