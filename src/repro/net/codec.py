"""Wire codec: length-prefixed framing + versioned message encoding.

Two layers, both independent of asyncio so they are unit-testable byte by
byte (the Hypothesis round-trip suite splits encoded streams at arbitrary
chunk boundaries):

**Value codec** — :func:`encode_value` / :func:`decode_value` translate
between Python objects and a JSON-safe tree.  Beyond the JSON scalars it
carries, bit-exactly:

* ``bytes`` — base64, tagged ``{"__bytes__": ...}``;
* NumPy arrays and scalars — raw-buffer base64 via
  :mod:`repro.util.arrays` (the same encoding the WAL uses on disk);
* the routing value types ``Rect``, ``RangeQuery`` and ``ResultEntry`` —
  tagged ``{"__obj__": name, ...}``;
* every ``@register_message`` dataclass — tagged
  ``{"__msg__": name, "__v__": WIRE_VERSION, <fields>}`` where the field
  set is **derived from and validated against the registered trace schema**
  (:func:`repro.sim.messages.message_schema`).  A decoder refuses a message
  whose version or field set disagrees with its schema, so a stale peer
  fails loudly instead of mis-parsing.

**Framing** — :class:`Framer` produces ``[u32 length][u8 format][body]``
frames (big-endian length of format byte + body) and :class:`FrameDecoder`
incrementally reassembles them from arbitrary chunk boundaries, with a
maximum-frame guard against corrupt or hostile length prefixes.  The body is
the serialised value tree: JSON (always available) or msgpack (when the
optional ``msgpack`` package is installed; negotiated per frame by the
format byte, so mixed-format peers interoperate).
"""

from __future__ import annotations

import base64
import json
from typing import Any

import numpy as np

from repro.core.query import RangeQuery, Rect
from repro.sim.messages import QueryMessage, ResultEntry, ResultMessage, message_schema
from repro.util.arrays import decode_array, encode_array, is_encoded_array

try:  # optional accelerator; JSON is the always-available baseline
    import msgpack  # type: ignore[import-not-found]

    _HAVE_MSGPACK = True
except ImportError:  # pragma: no cover - exercised on hosts without msgpack
    msgpack = None
    _HAVE_MSGPACK = False

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "CodecError",
    "available_formats",
    "encode_value",
    "decode_value",
    "Framer",
    "FrameDecoder",
]

#: version stamped into every encoded registered message; decoders reject
#: mismatches (bump on any schema-breaking change)
WIRE_VERSION = 1

#: refuse frames longer than this (corrupt length prefix / resource abuse)
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: format byte -> name
_FMT_JSON = 0x4A  # "J"
_FMT_MSGPACK = 0x4D  # "M"
_FORMATS = {"json": _FMT_JSON, "msgpack": _FMT_MSGPACK}

#: registered message dataclasses constructible from the wire.  Keys must be
#: registered in the ``register_message`` schema; the codec cross-checks at
#: encode/decode time.
_MESSAGE_CLASSES: dict[str, type[Any]] = {
    "QueryMessage": QueryMessage,
    "ResultMessage": ResultMessage,
}

#: plain tagged value types (not part of the message schema)
_OBJ_TAG = "__obj__"
_MSG_TAG = "__msg__"
_VER_TAG = "__v__"
_BYTES_TAG = "__bytes__"
_SCALAR_TAG = "__npscalar__"

#: dict keys user payloads may not use (they would be mistaken for tags)
_RESERVED_KEYS = frozenset({_OBJ_TAG, _MSG_TAG, _BYTES_TAG, _SCALAR_TAG, "__nd__"})


class CodecError(ValueError):
    """Malformed frame, unknown tag, or schema/version mismatch."""


def available_formats() -> tuple[str, ...]:
    """Wire formats usable in this environment (JSON always; msgpack if
    the optional dependency is installed)."""
    return ("json", "msgpack") if _HAVE_MSGPACK else ("json",)


# -- value codec ----------------------------------------------------------------


def encode_value(obj: Any) -> Any:
    """Translate ``obj`` into a JSON-safe tree (see module docstring)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {_BYTES_TAG: base64.b64encode(obj).decode("ascii")}
    if isinstance(obj, np.ndarray):
        return encode_array(obj)
    if isinstance(obj, np.generic):
        return {_SCALAR_TAG: None, "v": encode_array(np.asarray(obj))}
    if isinstance(obj, (list, tuple)):
        return [encode_value(v) for v in obj]
    if isinstance(obj, dict):
        out: dict[str, Any] = {}
        for key, val in obj.items():
            if not isinstance(key, str):
                raise CodecError(f"non-string dict key {key!r} cannot cross the wire")
            if key in _RESERVED_KEYS:
                raise CodecError(f"dict key {key!r} collides with a codec tag")
            out[key] = encode_value(val)
        return out
    if isinstance(obj, ResultEntry):
        return {_OBJ_TAG: "ResultEntry",
                "object_id": int(obj.object_id), "distance": float(obj.distance)}
    if isinstance(obj, Rect):
        return {_OBJ_TAG: "Rect",
                "lows": encode_array(obj.lows), "highs": encode_array(obj.highs)}
    if isinstance(obj, RangeQuery):
        return {
            _OBJ_TAG: "RangeQuery",
            "rect": encode_value(obj.rect),
            "prefix_key": int(obj.prefix_key),
            "prefix_len": int(obj.prefix_len),
            "qid": int(obj.qid),
            "source": encode_value(obj.source),
            "index_name": obj.index_name,
            "payload": encode_value(obj.payload),
            "radius": None if obj.radius is None else float(obj.radius),
        }
    name = type(obj).__name__
    schema = message_schema().get(name)
    if schema is not None:
        cls = _MESSAGE_CLASSES.get(name)
        if cls is None or not isinstance(obj, cls):
            raise CodecError(f"registered message {name} has no wire constructor")
        encoded: dict[str, Any] = {_MSG_TAG: name, _VER_TAG: WIRE_VERSION}
        for field in schema:
            encoded[field] = encode_value(getattr(obj, field))
        return encoded
    raise CodecError(f"{type(obj).__name__} is not wire-encodable")


def decode_value(obj: Any) -> Any:
    """Inverse of :func:`encode_value`, validating tags, schema and version."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode_value(v) for v in obj]
    if not isinstance(obj, dict):
        raise CodecError(f"undecodable wire value of type {type(obj).__name__}")
    if _BYTES_TAG in obj:
        try:
            return base64.b64decode(obj[_BYTES_TAG])
        except (TypeError, ValueError) as exc:
            raise CodecError(f"malformed bytes payload: {exc}") from exc
    if is_encoded_array(obj):
        try:
            return decode_array(obj)
        except ValueError as exc:
            raise CodecError(str(exc)) from exc
    if _SCALAR_TAG in obj:
        arr = decode_value(obj["v"])
        return arr[()]
    if _OBJ_TAG in obj:
        return _decode_obj(obj)
    if _MSG_TAG in obj:
        return _decode_message(obj)
    return {k: decode_value(v) for k, v in obj.items()}


def _decode_obj(obj: dict[str, Any]) -> Any:
    kind = obj[_OBJ_TAG]
    try:
        if kind == "ResultEntry":
            return ResultEntry(object_id=int(obj["object_id"]),
                               distance=float(obj["distance"]))
        if kind == "Rect":
            return Rect(decode_value(obj["lows"]), decode_value(obj["highs"]))
        if kind == "RangeQuery":
            return RangeQuery(
                rect=decode_value(obj["rect"]),
                prefix_key=int(obj["prefix_key"]),
                prefix_len=int(obj["prefix_len"]),
                qid=int(obj["qid"]),
                source=decode_value(obj["source"]),
                index_name=obj["index_name"],
                payload=decode_value(obj["payload"]),
                radius=None if obj["radius"] is None else float(obj["radius"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed {kind} payload: {exc}") from exc
    raise CodecError(f"unknown tagged object {kind!r}")


def _decode_message(obj: dict[str, Any]) -> Any:
    name = obj[_MSG_TAG]
    schema = message_schema().get(name)
    if schema is None:
        raise CodecError(f"{name!r} is not a registered message type")
    version = obj.get(_VER_TAG)
    if version != WIRE_VERSION:
        raise CodecError(
            f"{name}: wire version {version!r} != supported {WIRE_VERSION}"
        )
    got = set(obj) - {_MSG_TAG, _VER_TAG}
    want = set(schema)
    if got != want:
        missing, extra = sorted(want - got), sorted(got - want)
        raise CodecError(
            f"{name}: field set disagrees with the registered schema "
            f"(missing {missing}, unexpected {extra})"
        )
    cls = _MESSAGE_CLASSES.get(name)
    if cls is None:
        raise CodecError(f"registered message {name} has no wire constructor")
    fields = {field: decode_value(obj[field]) for field in schema}
    try:
        return cls(**fields)
    except TypeError as exc:
        raise CodecError(f"{name}: {exc}") from exc


# -- framing --------------------------------------------------------------------


class Framer:
    """Serialises values into ``[u32 length][u8 format][body]`` frames."""

    def __init__(self, fmt: str = "json") -> None:
        if fmt not in _FORMATS:
            raise CodecError(f"unknown wire format {fmt!r}")
        if fmt == "msgpack" and not _HAVE_MSGPACK:
            raise CodecError("msgpack format requested but msgpack is not installed")
        self.fmt = fmt
        self._fmt_byte = _FORMATS[fmt]

    def encode(self, obj: Any) -> bytes:
        tree = encode_value(obj)
        if self.fmt == "msgpack":
            body = msgpack.packb(tree, use_bin_type=True)
        else:
            body = json.dumps(tree, separators=(",", ":")).encode("utf-8")
        length = len(body) + 1
        if length > MAX_FRAME_BYTES:
            raise CodecError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
        return length.to_bytes(4, "big") + bytes((self._fmt_byte,)) + body


class FrameDecoder:
    """Incremental frame reassembly from arbitrary chunk boundaries.

    Feed any byte slicing of a frame stream; complete frames come back
    decoded, partial ones wait in the buffer.  Raises :class:`CodecError`
    on oversized or undecodable frames (the connection should be dropped —
    framing is unrecoverable once misaligned).
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        self._buf.extend(data)
        out: list[Any] = []
        while True:
            if len(self._buf) < 4:
                return out
            length = int.from_bytes(self._buf[:4], "big")
            if length < 1 or length > MAX_FRAME_BYTES:
                raise CodecError(f"invalid frame length {length}")
            if len(self._buf) < 4 + length:
                return out
            fmt_byte = self._buf[4]
            body = bytes(self._buf[5 : 4 + length])
            del self._buf[: 4 + length]
            out.append(self._decode_body(fmt_byte, body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame."""
        return len(self._buf)

    @staticmethod
    def _decode_body(fmt_byte: int, body: bytes) -> Any:
        if fmt_byte == _FMT_JSON:
            try:
                tree = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise CodecError(f"undecodable JSON frame: {exc}") from exc
        elif fmt_byte == _FMT_MSGPACK:
            if not _HAVE_MSGPACK:
                raise CodecError("received a msgpack frame but msgpack is not installed")
            try:
                tree = msgpack.unpackb(body, raw=False)
            except Exception as exc:
                raise CodecError(f"undecodable msgpack frame: {exc}") from exc
        else:
            raise CodecError(f"unknown frame format byte {fmt_byte:#x}")
        return decode_value(tree)
