"""Cluster runtimes: in-process task clusters, OS-process nodes, and the demo.

Three ways to run a ring of :class:`~repro.net.node.NodeProcess`:

* :class:`LocalCluster` — N nodes as asyncio tasks in one process, sharing
  one event loop.  The workhorse of the test suite and the CI live-backend
  smoke: real TCP sockets and framing, no process management.
* :func:`spawn_node_process` / ``repro node`` — one node per OS process
  (what Docker Compose runs).  The crash-recovery test drives this to
  SIGKILL a node mid-workload and restart it on the same data directory.
* :class:`ClusterClient` — a listener-less :class:`TcpTransport` speaking
  the node RPC surface (insert/query/status), used by tests, the demo and
  the ``repro cluster`` CLI.

:func:`run_cluster_demo` is the acceptance scenario from the issue: boot N
nodes, insert a workload, range-query it, SIGKILL-or-stop one node, verify
the ring re-converges and the restarted node recovers its shard
bit-identically (WAL/snapshot digest equality), then re-check recall
against a local brute-force scan.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import lp_hash_batch
from repro.net.node import NodeConfig, NodeProcess
from repro.net.transport import RpcError, TcpTransport

__all__ = [
    "ClusterClient",
    "LocalCluster",
    "spawn_node_process",
    "run_cluster_demo",
    "DemoReport",
]


class ClusterClient:
    """RPC client for a live ring: insert, query, status, convergence waits."""

    def __init__(self, fmt: str = "json", rpc_timeout: float = 5.0) -> None:
        self.transport = TcpTransport(fmt=fmt, rpc_timeout=rpc_timeout)

    async def start(self) -> None:
        await self.transport.start(listen=False)

    async def close(self) -> None:
        await self.transport.close()

    async def insert(self, addr: str, keys: np.ndarray, points: np.ndarray,
                     object_ids: np.ndarray) -> int:
        """Route a batch into the ring through the node at ``addr``."""
        reply = await self.transport.rpc(addr, "route_insert", {
            "keys": np.asarray(keys, dtype=np.uint64),
            "points": np.asarray(points, dtype=np.float64),
            "ids": np.asarray(object_ids, dtype=np.int64),
        })
        return int(reply["accepted"])

    async def query(self, addr: str, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Distributed range query through the node at ``addr``."""
        reply = await self.transport.rpc(addr, "query", {
            "lows": np.asarray(lows, dtype=np.float64),
            "highs": np.asarray(highs, dtype=np.float64),
        })
        return reply["ids"]

    async def status(self, addr: str) -> dict[str, Any]:
        return await self.transport.rpc(addr, "status", None)

    async def snapshot(self, addr: str) -> dict[str, Any]:
        return await self.transport.rpc(addr, "snapshot", None)

    async def wait_converged(self, addrs: list[str], timeout: float = 30.0,
                             poll: float = 0.1) -> bool:
        """Wait until the live nodes form one consistent ring.

        Converged means: every node has a predecessor and successor among
        the live set, and following successors from any node visits all
        live nodes exactly once (the closed-ring check the simulator's
        invariant suite runs on shared memory, done over RPC).
        """
        deadline = self.transport.now + timeout
        live = list(addrs)
        while self.transport.now < deadline:
            if await self._converged_once(live):
                return True
            await asyncio.sleep(poll)
        return False

    async def _converged_once(self, addrs: list[str]) -> bool:
        try:
            statuses = [await self.status(a) for a in addrs]
        except RpcError:
            return False
        live_addrs = {s["addr"] for s in statuses}
        succ_of = {}
        for s in statuses:
            if s["predecessor"] is None or s["predecessor"]["addr"] not in live_addrs:
                return False
            succs = s["successors"]
            if not succs or succs[0]["addr"] not in live_addrs:
                return False
            succ_of[s["addr"]] = succs[0]["addr"]
        # the successor pointers must form a single cycle over all nodes
        start = statuses[0]["addr"]
        seen = set()
        cur = start
        for _ in range(len(addrs) + 1):
            if cur in seen:
                break
            seen.add(cur)
            cur = succ_of[cur]
        return cur == start and seen == live_addrs


class LocalCluster:
    """N live nodes as asyncio tasks in this process (see module docstring)."""

    def __init__(
        self,
        n_nodes: int,
        data_root: str | Path | None = None,
        m: int = 32,
        k: int = 2,
        bounds_low: float = 0.0,
        bounds_high: float = 1000.0,
        index_name: str = "index",
        fmt: str = "json",
        stabilize_interval: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.n_nodes = n_nodes
        self._tmp: tempfile.TemporaryDirectory[str] | None = None
        if data_root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            data_root = self._tmp.name
        self.data_root = Path(data_root)
        self.nodes: list[NodeProcess] = []
        self._base = dict(
            m=m, k=k, bounds_low=bounds_low, bounds_high=bounds_high,
            index_name=index_name, fmt=fmt,
            stabilize_interval=stabilize_interval, seed=seed,
        )

    def _config(self, i: int, bootstrap: str | None) -> NodeConfig:
        return NodeConfig(
            name=f"node-{i}",
            data_dir=str(self.data_root / f"node-{i}"),
            bootstrap=bootstrap,
            host=i,
            **self._base,
        )

    async def start(self) -> list[str]:
        """Boot all nodes (node 0 seeds the ring) and return their addrs."""
        first = NodeProcess(self._config(0, None))
        await first.start()
        self.nodes = [first]
        for i in range(1, self.n_nodes):
            node = NodeProcess(self._config(i, first.addr))
            await node.start()
            self.nodes.append(node)
        return [n.addr for n in self.nodes]

    @property
    def addrs(self) -> list[str]:
        return [n.addr for n in self.nodes]

    async def stop_node(self, i: int) -> None:
        """Abrupt local stop (socket-level death; shard files stay on disk)."""
        await self.nodes[i].close()

    async def restart_node(self, i: int, bootstrap: str | None = None) -> str:
        """Re-create node ``i`` on its existing data dir and rejoin."""
        if bootstrap is None:
            others = [n.addr for j, n in enumerate(self.nodes) if j != i]
            bootstrap = others[0] if others else None
        node = NodeProcess(self._config(i, bootstrap))
        await node.start()
        self.nodes[i] = node
        return node.addr

    async def close(self) -> None:
        for node in self.nodes:
            await node.close()
        self.nodes = []
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None


def spawn_node_process(
    name: str,
    data_dir: str | Path,
    port: int,
    bootstrap: str | None = None,
    m: int = 32,
    k: int = 2,
    bounds_low: float = 0.0,
    bounds_high: float = 1000.0,
    extra_args: tuple[str, ...] = (),
) -> subprocess.Popen[bytes]:
    """Launch ``repro node`` as a child OS process (SIGKILL-able).

    Used by the crash-recovery test and mirrors what each Compose service
    runs; the child is fully described by CLI flags so a restart with the
    same flags is a faithful crash recovery.
    """
    cmd = [
        sys.executable, "-m", "repro.cli", "node",
        "--name", name,
        "--data-dir", str(data_dir),
        "--port", str(port),
        "--m", str(m), "--k", str(k),
        "--bounds-low", str(bounds_low), "--bounds-high", str(bounds_high),
    ]
    if bootstrap:
        cmd += ["--bootstrap", bootstrap]
    cmd += list(extra_args)
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(cmd, env=env)


def kill_node_process(proc: subprocess.Popen[bytes]) -> None:
    """SIGKILL — no flush, no atexit: the crash the WAL must survive."""
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=10)


@dataclass
class DemoReport:
    """Outcome of :func:`run_cluster_demo` (printed by ``repro cluster``)."""

    n_nodes: int
    n_entries: int
    n_queries: int
    recall_before: float
    recall_after: float
    killed_node: str
    digest_before: int
    digest_after: int
    converged_after_kill: bool
    converged_after_rejoin: bool
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.recall_before == 1.0
            and self.recall_after == 1.0
            and self.digest_before == self.digest_after
            and self.converged_after_kill
            and self.converged_after_rejoin
        )


def _brute_force(points: np.ndarray, ids: np.ndarray,
                 lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    mask = np.all((points >= lows) & (points <= highs), axis=1)
    return np.sort(ids[mask])


async def _measure_recall(client: ClusterClient, addr: str, rects: list[tuple[np.ndarray, np.ndarray]],
                          points: np.ndarray, ids: np.ndarray) -> float:
    """Mean recall of distributed queries vs a local linear scan."""
    recalls = []
    for lows, highs in rects:
        got = np.sort(await client.query(addr, lows, highs))
        want = _brute_force(points, ids, lows, highs)
        if len(want) == 0:
            continue
        recalls.append(len(np.intersect1d(got, want)) / len(want))
    return float(np.mean(recalls)) if recalls else 1.0


async def run_cluster_demo(
    n_nodes: int = 8,
    n_entries: int = 512,
    n_queries: int = 16,
    m: int = 32,
    k: int = 2,
    seed: int = 0,
    data_root: str | Path | None = None,
    kill_index: int = 2,
) -> DemoReport:
    """Insert → query → kill a node → rejoin → re-query (the issue's demo).

    Faults are off, so recall against brute force must be exactly 1.0 both
    before the kill and after the rejoin, and the restarted node's shard
    digest must equal its pre-kill digest (WAL/snapshot recovery).
    """
    bounds = IndexSpaceBounds.uniform(k, 0.0, 1000.0)
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 1000.0, size=(n_entries, k))
    ids = np.arange(n_entries, dtype=np.int64)
    keys = lp_hash_batch(points, bounds, m)
    rects = []
    for _ in range(n_queries):
        center = rng.uniform(100.0, 900.0, size=k)
        half = rng.uniform(20.0, 120.0, size=k)
        rects.append((center - half, center + half))

    cluster = LocalCluster(n_nodes, data_root=data_root, m=m, k=k)
    client = ClusterClient()
    notes: list[str] = []
    try:
        addrs = await cluster.start()
        await client.start()
        if not await client.wait_converged(addrs):
            notes.append("initial convergence timed out")
        accepted = await client.insert(addrs[0], keys, points, ids)
        if accepted != n_entries:
            notes.append(f"accepted {accepted}/{n_entries} entries")
        recall_before = await _measure_recall(client, addrs[1], rects, points, ids)

        victim = cluster.nodes[kill_index]
        victim_name = victim.config.name
        digest_before = victim.shard.digest()
        await cluster.stop_node(kill_index)
        survivors = [a for i, a in enumerate(addrs) if i != kill_index]
        converged_after_kill = await client.wait_converged(survivors)

        await cluster.restart_node(kill_index, bootstrap=survivors[0])
        digest_after = cluster.nodes[kill_index].shard.digest()
        converged_after_rejoin = await client.wait_converged(cluster.addrs)
        recall_after = await _measure_recall(
            client, cluster.addrs[kill_index], rects, points, ids)
    finally:
        await client.close()
        await cluster.close()

    return DemoReport(
        n_nodes=n_nodes,
        n_entries=n_entries,
        n_queries=n_queries,
        recall_before=recall_before,
        recall_after=recall_after,
        killed_node=victim_name,
        digest_before=digest_before,
        digest_after=digest_after,
        converged_after_kill=converged_after_kill,
        converged_after_rejoin=converged_after_rejoin,
        notes=notes,
    )
