"""Live network execution backend (asyncio TCP).

The simulator's :class:`repro.sim.transport.Transport` delivers messages by
scheduling callbacks on a virtual clock; this package is the second backend
the ROADMAP calls for — the same contract (per-peer ordered delivery,
cancelable timers, fault injection, trace sinks, byte accounting) carried by
real sockets on the host's monotonic clock:

* :mod:`repro.net.codec` — length-prefixed JSON/msgpack framing with a
  versioned message codec derived from the ``register_message`` schema;
* :mod:`repro.net.transport` — :class:`TcpTransport`: asyncio server +
  per-peer connection pool (reconnect with exponential backoff), one-way
  sends, request/response RPC, and the cancelable-timer API of the sim
  transport on the monotonic clock;
* :mod:`repro.net.node` — :class:`NodeProcess`: one live Chord node per
  asyncio task (or OS process via ``repro node``), running stabilisation
  over RPC and persisting its shard + successor state through
  :class:`repro.core.storage.PersistentShard`;
* :mod:`repro.net.cluster` — in-process clusters, the subprocess launcher
  used by the crash-recovery tests and Docker Compose, and the
  insert/query/kill-node/rejoin demo behind ``repro cluster``.

Both backends pass the same conformance suite
(``tests/test_transport_conformance.py``); docs/deployment.md describes the
architecture and the persistence format.
"""

from repro.net.codec import (
    CodecError,
    FrameDecoder,
    Framer,
    WIRE_VERSION,
    available_formats,
    decode_value,
    encode_value,
)
from repro.net.transport import NetTimerHandle, RpcError, RpcTimeout, TcpTransport
from repro.net.node import NodeConfig, NodeProcess
from repro.net.cluster import (
    ClusterClient,
    LocalCluster,
    run_cluster_demo,
)

__all__ = [
    "CodecError",
    "FrameDecoder",
    "Framer",
    "WIRE_VERSION",
    "available_formats",
    "decode_value",
    "encode_value",
    "NetTimerHandle",
    "RpcError",
    "RpcTimeout",
    "TcpTransport",
    "NodeConfig",
    "NodeProcess",
    "ClusterClient",
    "LocalCluster",
    "run_cluster_demo",
]
