"""Minkowski (``L_p``) metrics on dense real vectors.

The paper's footnote 1: ``L_k(x, y) = (sum |x_i - y_i|^k)^(1/k)``, where
``L_1`` is the Hamilton (Manhattan) distance and ``L_2`` the Euclidean
distance.  The synthetic evaluation (§4.2) uses the Euclidean metric on
100-dimensional points.

All bulk kernels are fully vectorised; ``one_to_many`` over 1e5 points is a
single broadcasted NumPy expression.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.metric.base import Metric

__all__ = [
    "MinkowskiMetric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
]


class MinkowskiMetric(Metric):
    """``L_p`` distance on dense vectors, optionally bounded by a box domain.

    Parameters
    ----------
    p:
        The Minkowski exponent; ``p >= 1`` (otherwise the triangle
        inequality fails).  ``math.inf`` gives the Chebyshev metric.
    box:
        Optional per-dimension domain bounds ``(low, high)``.  When given,
        the metric is bounded and ``upper_bound`` is the box diameter — the
        paper uses exactly this to bound the synthetic index space at
        ``sqrt(100 * (100 - 0)^2) = 1000``.
    """

    def __init__(self, p: float, box: tuple[float, float] | None = None, dim: int | None = None) -> None:
        if p < 1:
            raise ValueError(f"Minkowski exponent must be >= 1, got {p}")
        self.p = float(p)
        self.box = box
        self.dim = dim
        if box is not None:
            if dim is None:
                raise ValueError("a bounded Minkowski metric needs an explicit dim")
            low, high = box
            side = float(high) - float(low)
            if math.isinf(self.p):
                self.upper_bound = side
            else:
                self.upper_bound = side * dim ** (1.0 / self.p)
            self.is_bounded = True

    # -- scalar path --------------------------------------------------------

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        diff = np.abs(x - y)
        if math.isinf(self.p):
            return float(diff.max(initial=0.0))
        if self.p == 2.0:
            return float(np.sqrt(np.dot(diff, diff)))
        if self.p == 1.0:
            return float(diff.sum())
        return float((diff**self.p).sum() ** (1.0 / self.p))

    # -- vectorised kernels -------------------------------------------------

    def one_to_many(self, x: np.ndarray, ys: Sequence[np.ndarray]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        Y = np.asarray(ys, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[None, :]
        diff = np.abs(Y - x[None, :])
        if math.isinf(self.p):
            return diff.max(axis=1)
        if self.p == 2.0:
            # einsum avoids materialising diff**2 twice.
            return np.sqrt(np.einsum("ij,ij->i", diff, diff))
        if self.p == 1.0:
            return diff.sum(axis=1)
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    def many_to_many(self, xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> np.ndarray:
        # One broadcast kernel instead of one one_to_many pass per column.
        # Row blocks are chunked so the (chunk, n_ys, dim) difference tensor
        # stays cache-sized; every arithmetic step operates row-wise, so the
        # result is bit-identical to the column-loop contract of the base
        # class (enforced by tests/test_batch_equivalence.py).
        X = np.asarray(xs, dtype=np.float64)
        Y = np.asarray(ys, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if Y.ndim == 1:
            Y = Y[None, :]
        n, d = X.shape
        k = Y.shape[0]
        out = np.empty((n, k), dtype=np.float64)
        # L1/L2-cache-sized chunks (the sweep in docs/performance.md puts the
        # knee at ~512 KiB for the difference tensor) and one preallocated
        # scratch buffer reused across chunks, so the hot loop allocates
        # nothing.  out=-ops keep each arithmetic step row-wise, preserving
        # the bit-exact column-loop contract of the base class.
        chunk = max(1, (512 << 10) // max(1, k * d * 8))
        buf = np.empty((min(chunk, n), k, d), dtype=np.float64)
        for s in range(0, n, chunk):
            rows = min(chunk, n - s)
            diff = np.subtract(X[s : s + rows, None, :], Y[None, :, :], out=buf[:rows])
            np.abs(diff, out=diff)
            if math.isinf(self.p):
                diff.max(axis=2, out=out[s : s + rows])
            elif self.p == 2.0:
                np.sqrt(
                    np.einsum("ijk,ijk->ij", diff, diff), out=out[s : s + rows]
                )
            elif self.p == 1.0:
                diff.sum(axis=2, out=out[s : s + rows])
            else:
                np.power(diff, self.p, out=diff)
                diff.sum(axis=2, out=out[s : s + rows])
                np.power(
                    out[s : s + rows], 1.0 / self.p, out=out[s : s + rows]
                )
        return out

    def pairwise(self, xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> np.ndarray:
        X = np.asarray(xs, dtype=np.float64)
        Y = np.asarray(ys, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if Y.ndim == 1:
            Y = Y[None, :]
        if self.p == 2.0:
            # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y, clipped for FP safety.
            sq = (
                np.einsum("ij,ij->i", X, X)[:, None]
                + np.einsum("ij,ij->i", Y, Y)[None, :]
                - 2.0 * (X @ Y.T)
            )
            return np.sqrt(np.maximum(sq, 0.0))
        diff = np.abs(X[:, None, :] - Y[None, :, :])
        if math.isinf(self.p):
            return diff.max(axis=2)
        if self.p == 1.0:
            return diff.sum(axis=2)
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)

    @property
    def name(self) -> str:
        if math.isinf(self.p):
            return "L_inf"
        if self.p == int(self.p):
            return f"L{int(self.p)}"
        return f"L{self.p}"


class EuclideanMetric(MinkowskiMetric):
    """``L_2`` (Euclidean) distance — the paper's synthetic-dataset metric."""

    def __init__(self, box: tuple[float, float] | None = None, dim: int | None = None) -> None:
        super().__init__(2.0, box=box, dim=dim)


class ManhattanMetric(MinkowskiMetric):
    """``L_1`` (Hamilton / Manhattan) distance."""

    def __init__(self, box: tuple[float, float] | None = None, dim: int | None = None) -> None:
        super().__init__(1.0, box=box, dim=dim)


class ChebyshevMetric(MinkowskiMetric):
    """``L_inf`` (Chebyshev) distance."""

    def __init__(self, box: tuple[float, float] | None = None, dim: int | None = None) -> None:
        super().__init__(math.inf, box=box, dim=dim)
