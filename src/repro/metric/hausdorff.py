"""Hausdorff metric on finite point sets (the paper's image-search example).

Motivating example (3) in §2: similar-image search satisfies the metric-space
model "under some specific distance functions, e.g. Hausdorff metric" [14].
An image is abstracted as a finite set of feature points (e.g. edge pixels);
the Hausdorff distance between point sets ``A`` and ``B`` is::

    H(A, B) = max( max_{a in A} min_{b in B} |a - b|,
                   max_{b in B} min_{a in A} |a - b| )

which is a true metric on compact sets when the underlying point distance is
a metric.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.metric.base import Metric

__all__ = ["HausdorffMetric"]


class HausdorffMetric(Metric):
    """Symmetric Hausdorff distance between 2-D arrays of points.

    Objects are ``(n_points, dim)`` float arrays.  ``box``/``dim`` bound the
    underlying space and hence the metric (diameter of the box), enabling the
    paper's metric-space boundary strategy.
    """

    def __init__(self, box: tuple[float, float] | None = None, dim: int | None = None) -> None:
        self.box = box
        self.dim = dim
        if box is not None:
            if dim is None:
                raise ValueError("a bounded Hausdorff metric needs an explicit dim")
            low, high = box
            self.is_bounded = True
            self.upper_bound = float(np.sqrt(dim) * (high - low))

    @staticmethod
    def _directed_sq(A: np.ndarray, B: np.ndarray) -> float:
        """max over A of squared distance to nearest point of B."""
        # Pairwise squared distances via the expansion trick; A and B are
        # small per-object point sets, so the full matrix is cheap.
        sq = (
            np.einsum("ij,ij->i", A, A)[:, None]
            + np.einsum("ij,ij->i", B, B)[None, :]
            - 2.0 * (A @ B.T)
        )
        np.maximum(sq, 0.0, out=sq)
        return float(sq.min(axis=1).max())

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        A = np.asarray(x, dtype=np.float64)
        B = np.asarray(y, dtype=np.float64)
        if A.ndim == 1:
            A = A[None, :]
        if B.ndim == 1:
            B = B[None, :]
        if A.size == 0 or B.size == 0:
            raise ValueError("Hausdorff distance of an empty point set is undefined")
        return float(np.sqrt(max(self._directed_sq(A, B), self._directed_sq(B, A))))

    def one_to_many(self, x: np.ndarray, ys: Sequence[np.ndarray]) -> np.ndarray:
        return np.asarray([self.distance(x, y) for y in ys], dtype=np.float64)

    @property
    def name(self) -> str:
        return "hausdorff"
