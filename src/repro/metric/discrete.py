"""The discrete metric — a degenerate but valid metric used in tests.

``d(x, y) = 0`` iff ``x == y`` else ``1``.  Every metric-space algorithm must
at least not crash on it; it also exercises the "all distances equal" corner
of landmark projection (every non-landmark object maps to the same index
point).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import Any

import numpy as np

from repro.metric.base import Metric

__all__ = ["DiscreteMetric"]


class DiscreteMetric(Metric):
    """0/1 discrete metric on hashable objects."""

    is_bounded = True
    upper_bound = 1.0

    def distance(self, x: Hashable, y: Hashable) -> float:
        return 0.0 if x == y else 1.0

    def one_to_many(self, x: Any, ys: Sequence[Any]) -> np.ndarray:
        return np.asarray([0.0 if x == y else 1.0 for y in ys], dtype=np.float64)

    @property
    def name(self) -> str:
        return "discrete"
