"""The Jaccard distance on finite sets.

``d(A, B) = 1 - |A ∩ B| / |A ∪ B|`` is a true metric on finite sets (the
Steinhaus/Tanimoto distance), bounded by 1 — another drop-in "black box" for
the landmark platform, useful for tag sets, shingled documents and market
baskets.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.metric.base import Metric

__all__ = ["JaccardMetric"]


class JaccardMetric(Metric):
    """Jaccard distance between hashable-element collections.

    Objects may be any iterables of hashables; they are normalised to
    ``frozenset`` on first use.  Two empty sets are identical (distance 0).
    """

    is_bounded = True
    upper_bound = 1.0

    @staticmethod
    def _as_set(x: Any) -> frozenset:
        return x if isinstance(x, frozenset) else frozenset(x)

    def distance(self, x: Iterable, y: Iterable) -> float:
        a = self._as_set(x)
        b = self._as_set(y)
        if not a and not b:
            return 0.0
        inter = len(a & b)
        union = len(a) + len(b) - inter
        return 1.0 - inter / union

    def one_to_many(self, x: Iterable, ys: Sequence[Iterable]) -> np.ndarray:
        a = self._as_set(x)
        out = np.empty(len(ys), dtype=np.float64)
        la = len(a)
        for i, y in enumerate(ys):
            b = self._as_set(y)
            if not a and not b:
                out[i] = 0.0
                continue
            inter = len(a & b)
            out[i] = 1.0 - inter / (la + len(b) - inter)
        return out

    @property
    def name(self) -> str:
        return "jaccard"
