"""Metric transforms, notably the paper's bounding transform ``d' = d/(1+d)``.

§3.1 ("Boundary of index space"): bounded metrics can bound the index space
directly, "while unbounded metrics can be adjusted using the formula
``d' = d/(1+d)``".  ``t(d) = d/(1+d)`` is subadditive, increasing and
``t(0) = 0``, so ``t ∘ d`` is again a metric, bounded by 1.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.metric.base import Metric

__all__ = ["BoundedMetric", "ScaledMetric"]


class BoundedMetric(Metric):
    """Wrap an unbounded metric with ``d' = d/(1+d)`` (bounded by 1)."""

    is_bounded = True
    upper_bound = 1.0

    def __init__(self, inner: Metric) -> None:
        self.inner = inner

    def distance(self, x: Any, y: Any) -> float:
        d = self.inner.distance(x, y)
        return d / (1.0 + d)

    def one_to_many(self, x: Any, ys: Sequence[Any]) -> np.ndarray:
        d = self.inner.one_to_many(x, ys)
        return d / (1.0 + d)

    def pairwise(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        d = self.inner.pairwise(xs, ys)
        return d / (1.0 + d)

    def to_inner_radius(self, r_bounded: float) -> float:
        """Invert the transform: the inner-metric radius matching ``r_bounded``.

        Useful to express a query range given in original units against the
        bounded index space: ``t`` is increasing, so a ball of radius ``r``
        under ``d`` equals a ball of radius ``t(r)`` under ``d'``.
        """
        if r_bounded >= 1.0:
            return float("inf")
        return r_bounded / (1.0 - r_bounded)

    @staticmethod
    def to_bounded_radius(r_inner: float) -> float:
        """Forward transform for radii: ``t(r) = r/(1+r)``."""
        if r_inner == float("inf"):
            return 1.0
        return r_inner / (1.0 + r_inner)

    @property
    def name(self) -> str:
        return f"bounded({self.inner.name})"


class ScaledMetric(Metric):
    """Multiply a metric by a positive constant (still a metric).

    Handy for normalising heterogeneous metrics of a multi-index platform to
    comparable index-space extents.
    """

    def __init__(self, inner: Metric, scale: float) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.inner = inner
        self.scale = float(scale)
        self.is_bounded = inner.is_bounded
        self.upper_bound = inner.upper_bound * self.scale

    def distance(self, x: Any, y: Any) -> float:
        return self.scale * self.inner.distance(x, y)

    def one_to_many(self, x: Any, ys: Sequence[Any]) -> np.ndarray:
        return self.scale * self.inner.one_to_many(x, ys)

    def pairwise(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        return self.scale * self.inner.pairwise(xs, ys)

    @property
    def name(self) -> str:
        return f"{self.scale}*{self.inner.name}"
