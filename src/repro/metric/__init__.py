"""Generic metric-space substrate (paper §2).

Any data domain with a black-box distance function satisfying positivity,
reflexivity, symmetry and the triangle inequality can be indexed by the
landmark architecture.  This package supplies the abstraction plus the
metrics the paper names: ``L_p`` vector metrics (§4.2's Euclidean),
arccos-cosine angular distance on TF/IDF term vectors (§4.3), edit distance
on strings, and the Hausdorff metric on point sets, along with the
``d/(1+d)`` bounding transform of §3.1.
"""

from repro.metric.base import Metric, MetricAxiomViolation, MetricSpace, check_metric_axioms
from repro.metric.cosine import AngularMetric, SparseAngularMetric
from repro.metric.discrete import DiscreteMetric
from repro.metric.hausdorff import HausdorffMetric
from repro.metric.sets import JaccardMetric
from repro.metric.strings import EditDistanceMetric, HammingMetric, edit_distance
from repro.metric.transforms import BoundedMetric, ScaledMetric
from repro.metric.vector import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)

__all__ = [
    "Metric",
    "MetricSpace",
    "MetricAxiomViolation",
    "check_metric_axioms",
    "MinkowskiMetric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "AngularMetric",
    "SparseAngularMetric",
    "EditDistanceMetric",
    "HammingMetric",
    "edit_distance",
    "HausdorffMetric",
    "JaccardMetric",
    "BoundedMetric",
    "ScaledMetric",
    "DiscreteMetric",
]
