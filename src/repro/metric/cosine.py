"""Angular (arccos-cosine) distance on dense and sparse term vectors.

The paper's document experiments (§4.3) measure dissimilarity as the *angle*
between TF/IDF term vectors::

    d(X, Y) = arccos( X . Y / (|X| |Y|) )

The angle is a true metric on the unit sphere (the geodesic distance), unlike
``1 - cos`` which violates the triangle inequality.  For non-negative vectors
(term weights) the angle lies in ``[0, pi/2]``, which is why the paper notes
that "a large amount of vectors have maximum distance (pi/2)" to a sparse
document vector.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

import numpy as np
from scipy import sparse

from repro.metric.base import Metric

__all__ = ["AngularMetric", "SparseAngularMetric"]


def _safe_arccos(c: np.ndarray) -> np.ndarray:
    return np.arccos(np.clip(c, -1.0, 1.0))


class AngularMetric(Metric):
    """Angle between dense vectors; bounded by ``pi`` (``pi/2`` if non-negative).

    Parameters
    ----------
    nonnegative:
        Declare that all domain vectors have non-negative components, which
        tightens ``upper_bound`` to ``pi/2`` (true for TF/IDF weights).
    """

    is_bounded = True

    def __init__(self, nonnegative: bool = False) -> None:
        self.nonnegative = nonnegative
        self.upper_bound = math.pi / 2 if nonnegative else math.pi

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        nx = np.linalg.norm(x)
        ny = np.linalg.norm(y)
        if nx == 0.0 or ny == 0.0:
            # A zero vector has undefined direction; treat as maximally far
            # (matches how an empty document relates to any query).
            return self.upper_bound
        return float(_safe_arccos(np.array(np.dot(x, y) / (nx * ny))))

    def one_to_many(self, x: np.ndarray, ys: Sequence[np.ndarray]) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        Y = np.asarray(ys, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[None, :]
        nx = np.linalg.norm(x)
        ny = np.sqrt(np.einsum("ij,ij->i", Y, Y))
        out = np.full(Y.shape[0], self.upper_bound)
        if nx == 0.0:
            return out
        ok = ny > 0.0
        # einsum, not ``Y @ x``: BLAS gemv picks different kernels for
        # different row counts, so the matvec is not batch-size invariant at
        # the last ulp; einsum reduces each row identically regardless of
        # batch shape, which project()/project_one() equivalence relies on.
        cos = np.einsum("ij,j->i", Y[ok], x) / (ny[ok] * nx)
        out[ok] = _safe_arccos(cos)
        return out

    def pairwise(self, xs: Sequence[np.ndarray], ys: Sequence[np.ndarray]) -> np.ndarray:
        X = np.asarray(xs, dtype=np.float64)
        Y = np.asarray(ys, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if Y.ndim == 1:
            Y = Y[None, :]
        nx = np.sqrt(np.einsum("ij,ij->i", X, X))
        ny = np.sqrt(np.einsum("ij,ij->i", Y, Y))
        out = np.full((X.shape[0], Y.shape[0]), self.upper_bound)
        okx = nx > 0.0
        oky = ny > 0.0
        cos = (X[okx] @ Y[oky].T) / np.outer(nx[okx], ny[oky])
        out[np.ix_(okx, oky)] = _safe_arccos(cos)
        return out

    @property
    def name(self) -> str:
        return "angular"


class SparseAngularMetric(Metric):
    """Angle between rows of a SciPy CSR matrix (TF/IDF document vectors).

    Objects of this domain are 1-row sparse matrices (as returned by
    ``csr[i]``) or 1-D dense arrays.  The bulk kernels accept a full CSR
    matrix for ``ys`` and compute all angles with one sparse mat-vec.
    TF/IDF weights are non-negative, so the metric is bounded by ``pi/2``.
    """

    is_bounded = True
    upper_bound = math.pi / 2

    @staticmethod
    def _as_row(x: Any) -> sparse.csr_matrix:
        if sparse.issparse(x):
            return x.tocsr()
        arr = np.asarray(x, dtype=np.float64)
        return sparse.csr_matrix(arr[None, :] if arr.ndim == 1 else arr)

    def distance(self, x: Any, y: Any) -> float:
        xr = self._as_row(x)
        yr = self._as_row(y)
        nx = math.sqrt(xr.multiply(xr).sum())
        ny = math.sqrt(yr.multiply(yr).sum())
        if nx == 0.0 or ny == 0.0:
            return self.upper_bound
        dot = float(xr.multiply(yr).sum())
        return float(_safe_arccos(np.array(dot / (nx * ny))))

    def one_to_many(self, x: Any, ys: Any) -> np.ndarray:
        xr = self._as_row(x)
        Y = ys.tocsr() if sparse.issparse(ys) else sparse.csr_matrix(np.asarray(ys, dtype=np.float64))
        nx = math.sqrt(xr.multiply(xr).sum())
        ny = np.sqrt(np.asarray(Y.multiply(Y).sum(axis=1)).ravel())
        out = np.full(Y.shape[0], self.upper_bound)
        if nx == 0.0:
            return out
        dots = np.asarray((Y @ xr.T).todense()).ravel()
        ok = ny > 0.0
        out[ok] = _safe_arccos(dots[ok] / (ny[ok] * nx))
        return out

    def pairwise(self, xs: Any, ys: Any) -> np.ndarray:
        X = xs.tocsr() if sparse.issparse(xs) else sparse.csr_matrix(np.asarray(xs, dtype=np.float64))
        Y = ys.tocsr() if sparse.issparse(ys) else sparse.csr_matrix(np.asarray(ys, dtype=np.float64))
        nx = np.sqrt(np.asarray(X.multiply(X).sum(axis=1)).ravel())
        ny = np.sqrt(np.asarray(Y.multiply(Y).sum(axis=1)).ravel())
        dots = np.asarray((X @ Y.T).todense())
        out = np.full(dots.shape, self.upper_bound)
        ok = np.outer(nx > 0.0, ny > 0.0)
        denom = np.outer(np.where(nx > 0, nx, 1.0), np.where(ny > 0, ny, 1.0))
        cos = dots / denom
        out[ok] = _safe_arccos(cos[ok])
        return out

    @property
    def name(self) -> str:
        return "sparse-angular"
