"""The generic metric-space abstraction (paper §2, Definition 1).

The index architecture treats the distance function as a *black box*: any
data domain ``D`` together with a function ``d: D x D -> R`` satisfying
positivity, reflexivity, symmetry and the triangle inequality can be indexed.
:class:`Metric` is that black box; :class:`MetricSpace` bundles it with a
dataset.

Vector metrics override the bulk kernels (:meth:`Metric.one_to_many`,
:meth:`Metric.pairwise`) with NumPy-vectorised implementations — landmark
projection of 1e5 objects must not run a Python loop per object (see the
hpc-parallel guide: vectorise the hot path, keep the scalar path legible).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

import numpy as np

__all__ = ["Metric", "MetricSpace", "MetricAxiomViolation", "check_metric_axioms"]


class Metric:
    """A black-box distance function over some data domain.

    Subclasses must implement :meth:`distance`.  ``is_bounded`` /
    ``upper_bound`` describe the metric's range and drive the paper's two
    index-space boundary strategies (§3.1): a bounded metric can bound the
    index space directly, an unbounded one is either transformed with
    ``d' = d/(1+d)`` (:class:`repro.metric.transforms.BoundedMetric`) or
    bounded empirically from the landmark-selection sample.
    """

    #: True when the metric has a finite upper bound valid for all inputs.
    is_bounded: bool = False
    #: The finite upper bound (only meaningful when ``is_bounded``).
    upper_bound: float = math.inf

    def distance(self, x: Any, y: Any) -> float:
        """Distance between two objects of the domain. Must satisfy Definition 1."""
        raise NotImplementedError

    # -- bulk kernels -------------------------------------------------------

    def one_to_many(self, x: Any, ys: Sequence[Any]) -> np.ndarray:
        """Distances from one object ``x`` to every object in ``ys``.

        The generic implementation loops in Python; vector metrics override
        it with a vectorised kernel.
        """
        return np.asarray([self.distance(x, y) for y in ys], dtype=np.float64)

    def pairwise(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        """``len(xs) x len(ys)`` distance matrix.

        Overrides may trade exactness for speed (e.g. the Euclidean
        expansion trick); use :meth:`many_to_many` where bit-identical
        agreement with :meth:`one_to_many` matters.
        """
        return np.stack([self.one_to_many(x, ys) for x in xs])

    def many_to_many(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        """``(len(xs), len(ys))`` distance matrix, column-exact by contract.

        Column ``j`` is guaranteed bit-identical to
        ``one_to_many(ys[j], xs)`` — the contract landmark embedding relies
        on: an object projected alone must land on exactly the same index
        point as when projected in a batch (deterministic replay compares
        the two paths bit for bit).  The generic implementation runs one
        ``one_to_many`` pass per column; vector metrics override it with a
        single broadcast kernel whose equality with the column loop is
        enforced by the batch-equivalence property tests.
        """
        n_ys = ys.shape[0] if hasattr(ys, "shape") and getattr(ys, "ndim", 1) >= 2 else len(ys)
        if n_ys == 0:
            n_xs = xs.shape[0] if hasattr(xs, "shape") and getattr(xs, "ndim", 1) >= 2 else len(xs)
            return np.empty((n_xs, 0), dtype=np.float64)
        cols = [self.one_to_many(ys[j], xs) for j in range(n_ys)]
        return np.stack(cols, axis=1)

    # -- naming -------------------------------------------------------------

    @property
    def name(self) -> str:
        """Short human-readable name used in reports."""
        return type(self).__name__


@dataclass
class MetricSpace:
    """A dataset together with its black-box metric (paper Definition 1).

    ``objects`` may be any sequence the metric understands: a 2-D float array
    for vector metrics, a list of strings for edit distance, a CSR matrix
    row-view for the angular document metric, ...
    """

    objects: Any
    metric: Metric
    name: str = field(default="metric-space")

    def __len__(self) -> int:
        return len(self.objects)

    def __getitem__(self, idx: int) -> Any:
        return self.objects[idx]

    def distances_from(self, x: Any) -> np.ndarray:
        """Distances from ``x`` to the whole dataset (vectorised when possible)."""
        return self.metric.one_to_many(x, self.objects)


class MetricAxiomViolation(AssertionError):
    """Raised by :func:`check_metric_axioms` when a sampled axiom fails."""


def check_metric_axioms(
    metric: Metric,
    sample: Sequence[Any],
    *,
    rtol: float = 1e-9,
    atol: float = 1e-6,
) -> None:
    """Empirically verify Definition 1 on a sample (used by the test suite).

    Checks positivity, reflexivity (``d(x, x) = 0``), symmetry and the
    triangle inequality over every triple in ``sample``.  Raises
    :class:`MetricAxiomViolation` on the first failure.  Intended for small
    samples (cost is cubic in ``len(sample)``).
    """
    n = len(sample)
    d = metric.pairwise(sample, sample)
    if np.any(d < -atol):
        raise MetricAxiomViolation("positivity violated: negative distance found")
    diag = np.diag(d)
    if np.any(np.abs(diag) > atol):
        raise MetricAxiomViolation(f"reflexivity violated: d(x, x) = {diag.max()}")
    if not np.allclose(d, d.T, rtol=rtol, atol=atol):
        raise MetricAxiomViolation("symmetry violated")
    slack = atol + rtol * np.abs(d).max()
    for i in range(n):
        # d(x, z) <= d(x, y) + d(y, z) for all y — vectorised per (i, :).
        through = d[i, :, None] + d[:, :]  # through[y, z] = d(i, y) + d(y, z)
        best = through.min(axis=0)
        if np.any(d[i] > best + slack):
            j = int(np.argmax(d[i] - best))
            raise MetricAxiomViolation(
                f"triangle inequality violated for pair ({i}, {j}): "
                f"d = {d[i, j]}, best detour = {best[j]}"
            )
