"""String metrics: Levenshtein edit distance and Hamming distance.

The paper's motivating examples (1) and (6) — DNA/protein search and
similar-sentence search — operate in the metric space of strings under the
*edit distance*: the minimum number of point mutations (change, insert or
delete a letter) required to turn one string into the other (footnote 2).

The DP kernel keeps only two rows and is NumPy-vectorised across the inner
dimension; an optional ``cutoff`` enables the classic band/early-exit
optimisation used when only distances ``<= r`` matter (range queries).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.metric.base import Metric

__all__ = ["EditDistanceMetric", "HammingMetric", "edit_distance"]


def edit_distance(a: str, b: str, cutoff: int | None = None) -> int:
    """Levenshtein distance between ``a`` and ``b``.

    With ``cutoff`` set, returns ``cutoff + 1`` as soon as the true distance
    provably exceeds ``cutoff`` (every row of the DP matrix is a lower bound
    when minimised).
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if la == 0:
        return lb
    if lb == 0:
        return la
    if cutoff is not None and abs(la - lb) > cutoff:
        return cutoff + 1
    if la < lb:  # keep the inner (vectorised) dimension the longer one
        a, b, la, lb = b, a, lb, la
    bv = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    prev = np.arange(lb + 1, dtype=np.int64)
    cur = np.empty(lb + 1, dtype=np.int64)
    for i, ca in enumerate(a, start=1):
        cur[0] = i
        sub = prev[:-1] + (bv != ord(ca))
        dele = prev[1:] + 1
        np.minimum(sub, dele, out=cur[1:])
        # Insertions propagate left-to-right; a cumulative min with +1 per
        # step is required, which NumPy lacks — the short scalar loop below
        # runs only where an insertion could still improve the row.
        row = cur
        for j in range(1, lb + 1):
            ins = row[j - 1] + 1
            if ins < row[j]:
                row[j] = ins
        if cutoff is not None and row.min() > cutoff:
            return cutoff + 1
        prev, cur = cur, prev
    return int(prev[lb])


class EditDistanceMetric(Metric):
    """Levenshtein edit distance over strings.

    Unbounded in general; when ``max_length`` is given the metric reports a
    valid upper bound (no two strings of length ``<= max_length`` can be
    farther than ``max_length`` apart).
    """

    def __init__(self, max_length: int | None = None) -> None:
        self.max_length = max_length
        if max_length is not None:
            self.is_bounded = True
            self.upper_bound = float(max_length)

    def distance(self, x: str, y: str) -> float:
        return float(edit_distance(x, y))

    def one_to_many(self, x: str, ys: Sequence[str]) -> np.ndarray:
        return np.asarray([edit_distance(x, y) for y in ys], dtype=np.float64)

    @property
    def name(self) -> str:
        return "edit-distance"


class HammingMetric(Metric):
    """Hamming distance on equal-length strings (point substitutions only)."""

    def __init__(self, length: int | None = None) -> None:
        self.length = length
        if length is not None:
            self.is_bounded = True
            self.upper_bound = float(length)

    def distance(self, x: str, y: str) -> float:
        if len(x) != len(y):
            raise ValueError("Hamming distance requires equal-length strings")
        return float(sum(cx != cy for cx, cy in zip(x, y)))

    def one_to_many(self, x: str, ys: Sequence[str]) -> np.ndarray:
        xv = np.frombuffer(x.encode("utf-32-le"), dtype=np.uint32)
        out = np.empty(len(ys), dtype=np.float64)
        for i, y in enumerate(ys):
            if len(y) != len(x):
                raise ValueError("Hamming distance requires equal-length strings")
            yv = np.frombuffer(y.encode("utf-32-le"), dtype=np.uint32)
            out[i] = np.count_nonzero(xv != yv)
        return out

    @property
    def name(self) -> str:
        return "hamming"
