"""Pytest plugin: dump a replay bundle when a scenario-driven test fails.

Registered from the repository-root ``conftest.py`` via ``pytest_plugins``.
Any test that executes a :class:`repro.check.replay.Scenario` (the fuzz
machines do this automatically) publishes it with ``attach_scenario``; if
the test then fails, this plugin writes the scenario — by then shrunk to a
minimal op sequence by Hypothesis — as a JSON replay bundle under
``.repro-bundles/`` (override with the ``REPRO_BUNDLE_DIR`` environment
variable) and names the file in the test report.  Reproduce with::

    PYTHONPATH=src python -m repro.cli replay .repro-bundles/<bundle>.json
"""

from __future__ import annotations

import os
import re

import pytest

from repro.check import replay as _replay

__all__ = ["BUNDLE_DIR_ENV", "bundle_dir"]

BUNDLE_DIR_ENV = "REPRO_BUNDLE_DIR"
_DEFAULT_DIR = ".repro-bundles"


def bundle_dir() -> str:
    return os.environ.get(BUNDLE_DIR_ENV, _DEFAULT_DIR)


def _bundle_path(nodeid: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", nodeid)
    return os.path.join(bundle_dir(), f"{safe}.json")


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item, call):
    report = yield
    if report.when == "call":
        scenario = _replay.current_scenario()
        if scenario is not None:
            if report.failed:
                os.makedirs(bundle_dir(), exist_ok=True)
                path = _bundle_path(item.nodeid)
                _replay.write_bundle(
                    path, scenario, error=str(report.longrepr)[:4000]
                )
                report.sections.append(
                    (
                        "repro bundle",
                        f"scenario written to {path}\n"
                        f"reproduce with: python -m repro.cli replay {path}",
                    )
                )
            _replay.clear_scenario()
    return report
