"""Pytest plugin: dump a replay bundle when a scenario-driven test fails.

Registered from the repository-root ``conftest.py`` via ``pytest_plugins``.
Any test that executes a :class:`repro.check.replay.Scenario` (the fuzz
machines do this automatically) publishes it with ``attach_scenario``; if
the test then fails, this plugin writes the scenario — by then shrunk to a
minimal op sequence by Hypothesis — as a JSON replay bundle under
``.repro-bundles/`` (override with the ``REPRO_BUNDLE_DIR`` environment
variable) and names the file in the test report.  Reproduce with::

    PYTHONPATH=src python -m repro.cli replay .repro-bundles/<bundle>.json

Flight recorders get the same treatment: when a test fails, every live
:class:`repro.obs.flight.FlightRecorder` holding buffered events is dumped
next to the replay bundles (``<nodeid>-flightN.json``); render with
``python -m repro.cli flight <path>``.
"""

from __future__ import annotations

import os
import re
from typing import Any

import pytest

from repro.check import replay as _replay

__all__ = ["BUNDLE_DIR_ENV", "bundle_dir"]

BUNDLE_DIR_ENV = "REPRO_BUNDLE_DIR"
_DEFAULT_DIR = ".repro-bundles"


def bundle_dir() -> str:
    return os.environ.get(BUNDLE_DIR_ENV, _DEFAULT_DIR)


def _bundle_path(nodeid: str) -> str:
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", nodeid)
    return os.path.join(bundle_dir(), f"{safe}.json")


def _dump_flight_recorders(item: Any, report: Any) -> None:
    """Write every live flight recorder with buffered events as a bundle.

    Recorders register themselves in a WeakSet at construction
    (:mod:`repro.obs.flight`), so any recorder the failing test created —
    directly or inside a :class:`~repro.core.scale.ScaleSimulation` — leaves
    its recent-event tail on disk without the test opting in.
    """
    from repro.obs import flight as _flight

    recorders = [r for r in _flight.attached_recorders() if len(r)]
    if not recorders:
        return
    os.makedirs(bundle_dir(), exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", item.nodeid)
    paths = []
    for n, rec in enumerate(recorders):
        path = os.path.join(bundle_dir(), f"{safe}-flight{n}.json")
        rec.dump(path, reason=f"test-failure:{item.nodeid}"[:200])
        paths.append(path)
    report.sections.append(
        (
            "flight bundles",
            "\n".join(f"flight recorder tail written to {p}" for p in paths)
            + "\ninspect with: python -m repro.cli flight <path>",
        )
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_makereport(item: Any, call: Any) -> Any:
    report = yield
    if report.when == "call":
        scenario = _replay.current_scenario()
        if scenario is not None:
            if report.failed:
                os.makedirs(bundle_dir(), exist_ok=True)
                path = _bundle_path(item.nodeid)
                _replay.write_bundle(
                    path, scenario, error=str(report.longrepr)[:4000]
                )
                report.sections.append(
                    (
                        "repro bundle",
                        f"scenario written to {path}\n"
                        f"reproduce with: python -m repro.cli replay {path}",
                    )
                )
            _replay.clear_scenario()
        if report.failed:
            _dump_flight_recorders(item, report)
    return report
