"""Deterministic record/replay of simulation scenarios.

Every source of nondeterminism in a run is an explicitly seeded generator:
the dataset, the ring ids, landmark selection, the fault-injection coin
flips, query objects and churn choices.  A :class:`Scenario` therefore
captures a whole run in a few integers plus a compact operation list, and
re-executing it reproduces the run *bit-identically* — which
:class:`RunFingerprint` proves by hashing what the run actually did:

* ``events`` / ``final_time`` / ``schedule_digest`` — the simulator's event
  count, closing clock value (stored as ``float.hex()``) and the CRC32 the
  engine folds over every executed ``(time, seq)`` pair
  (:attr:`repro.sim.engine.Simulator.schedule_digest`);
* ``sent`` / ``delivered`` / ``dropped`` — transport totals;
* ``draw_crc`` — CRC32 over every fault-injection random draw, in order
  (:attr:`repro.sim.transport.Transport.draw_log`);
* ``result_digest`` — SHA-256 over every operation's observable outcome
  (result ids and ``float.hex()`` distances, migration counts, ...);
* ``span_count`` — spans emitted by the observability recorder.

``record_run`` writes ``{"scenario": ..., "fingerprint": ...}`` as a JSON
replay log; ``replay_file`` re-executes it and diffs the fingerprints.  The
same file format is the *repro bundle* the pytest plugin drops when a
fuzz test fails (:mod:`repro.check.pytest_plugin`) and what the
``repro replay`` CLI command consumes.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.check.invariants import InvariantChecker, PartitionChecker
from repro.check.oracle import LinearScanOracle
from repro.core.knn import knn_search
from repro.core.platform import IndexPlatform
from repro.core.updates import UpdateProtocol
from repro.dht.ring import ChordRing
from repro.metric import EuclideanMetric
from repro.sim.network import ConstantLatency
from repro.sim.stats import StatsCollector
from repro.sim.transport import FaultConfig

__all__ = [
    "Scenario",
    "RunFingerprint",
    "RunReport",
    "World",
    "build_world",
    "apply_op",
    "execute_scenario",
    "random_scenario",
    "record_run",
    "replay_file",
    "write_bundle",
    "attach_scenario",
    "current_scenario",
    "clear_scenario",
]

#: domain of the synthetic dataset (a box keeps the metric bounded, which
#: certifies k-NN exactness and allows ``boundary="metric"``)
BOX = (0.0, 100.0)


@dataclass
class Scenario:
    """Everything needed to re-execute a run bit-identically."""

    seed: int = 0
    n_nodes: int = 12
    n_objects: int = 80
    dim: int = 3
    k: int = 3
    m: int = 18
    replication: int = 2
    loss: float = 0.0
    jitter: float = 0.0
    fault_seed: int = 0
    latency: float = 0.01
    selection: str = "greedy"
    #: operation list; each op is a JSON-able list ``[kind, *int_args]``
    ops: list[list[Any]] = field(default_factory=list)

    @property
    def faults_active(self) -> bool:
        return bool(self.loss or self.jitter)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> Scenario:
        return cls(**d)


@dataclass
class RunFingerprint:
    """What a run observably did; equality means bit-identical execution."""

    events: int
    final_time: str
    schedule_digest: int
    sent: int
    delivered: int
    dropped: int
    draw_crc: int
    result_digest: str
    span_count: int
    ops_applied: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> RunFingerprint:
        return cls(**d)

    def diff(self, other: RunFingerprint) -> list[str]:
        """Human-readable field mismatches (empty = identical runs)."""
        out = []
        for name, mine in asdict(self).items():
            theirs = getattr(other, name)
            if mine != theirs:
                out.append(f"{name}: {mine!r} != {theirs!r}")
        return out


@dataclass
class RunReport:
    """Outcome of one executed scenario."""

    scenario: Scenario
    fingerprint: RunFingerprint
    #: one summary string per applied op (human-readable timeline)
    timeline: list[str]
    #: differential mismatches (empty unless differential=True found any)
    mismatches: list[str]
    #: invariant checks passed, by name
    checks: dict[str, int]

    @property
    def ok(self) -> bool:
        return not self.mismatches


class World:
    """A live platform under test plus its checking apparatus."""

    def __init__(self, scenario: Scenario, differential: bool = False) -> None:
        sc = scenario
        self.scenario = sc
        self.name = "fuzz"
        rng = np.random.default_rng(sc.seed)
        lo, hi = BOX
        self.data = rng.uniform(lo, hi, size=(sc.n_objects, sc.dim))
        self.metric = EuclideanMetric(box=BOX, dim=sc.dim)
        latency = ConstantLatency(sc.n_nodes, delay=sc.latency)
        ring = ChordRing.build(
            sc.n_nodes, m=sc.m, seed=sc.seed, latency=latency,
        )
        from repro.obs import Observability

        obs = Observability(metrics=False, tracing=True)
        faults = (
            FaultConfig(loss_rate=sc.loss, jitter=sc.jitter, seed=sc.fault_seed)
            if sc.faults_active
            else None
        )
        self.platform = IndexPlatform(ring, faults=faults, obs=obs)
        self.platform.sim.digest_enabled = True
        self.platform.transport.draw_log = []
        self.index = self.platform.create_index(
            self.name, self.data, self.metric,
            k=sc.k, selection=sc.selection,
            sample_size=min(sc.n_objects, 64),
            replication=sc.replication, seed=sc.seed,
        )
        self.updates = UpdateProtocol(self.index)
        self.engine = self.platform.lifecycle()
        self.stats = StatsCollector()
        self.partition = PartitionChecker(self.index)
        self.invariants = InvariantChecker(platform=self.platform)
        self.invariants.track_engine(self.engine)
        self.oracle = (
            LinearScanOracle(self.data, self.metric) if differential else None
        )
        self.hasher = hashlib.sha256()
        self.mismatches: list[str] = []
        self.timeline: list[str] = []

    # -- op helpers -------------------------------------------------------------

    def _digest(self, *parts: Any) -> None:
        for p in parts:
            self.hasher.update(str(p).encode())
            self.hasher.update(b"|")

    def _live_source(self) -> Any:
        return self.platform.ring.nodes()[0]

    def _query_object(self, qseed: int) -> np.ndarray:
        lo, hi = BOX
        return np.random.default_rng(qseed).uniform(lo, hi, size=self.scenario.dim)

    def _indexed_ids(self) -> list[int]:
        return sorted(int(i) for i in self.index._object_ids)

    # -- fingerprinting ---------------------------------------------------------

    def fingerprint(self, ops_applied: int) -> RunFingerprint:
        sim = self.platform.sim
        ts = self.platform.transport.stats
        crc = 0
        for kind, u in self.platform.transport.draw_log:
            crc = zlib.crc32(kind.encode() + struct.pack("<d", u), crc)
        memory = self.platform.obs.span_memory
        return RunFingerprint(
            events=sim.events_processed,
            final_time=float(sim.now).hex(),
            schedule_digest=sim.schedule_digest,
            sent=ts.sent,
            delivered=ts.delivered,
            dropped=ts.dropped_dead + ts.dropped_loss + ts.dropped_partition,
            draw_crc=crc,
            result_digest=self.hasher.hexdigest(),
            span_count=len(memory) if memory is not None else 0,
            ops_applied=ops_applied,
        )


def build_world(scenario: Scenario, differential: bool = False) -> World:
    return World(scenario, differential=differential)


def apply_op(world: World, op: list[Any]) -> str:
    """Execute one scenario operation; returns its timeline summary.

    Invalid operations (deleting an unindexed object, crashing below the
    minimum ring size, ...) are *deterministically skipped* — validity
    depends on runtime state, so scenario generation need not model it.
    """
    sc = world.scenario
    kind = op[0]
    world._digest("op", kind, *op[1:])
    summary = _OPS[kind](world, *op[1:])
    world.timeline.append(f"{kind}: {summary}")
    # global invariants hold at every operation boundary
    world.invariants.check_all(world.stats)
    return summary


def _op_range(world: World, qseed: int, radius: float) -> str:
    obj = world._query_object(int(qseed))
    stats_before = set(world.stats.queries)
    entries = world.platform.query(
        world.name, obj, float(radius),
        source_node=world._live_source(),
        top_k=10**6, range_filter=True,
        engine=world.engine, stats=world.stats,
        checker=world.partition,
    )
    qid = max(set(world.stats.queries) - stats_before, default=None)
    for e in sorted(entries, key=lambda e: (e.distance, e.object_id)):
        world._digest(e.object_id, float(e.distance).hex())
    if qid is not None:
        world.invariants.check_spans(world.stats, qid=qid)
    if world.oracle is not None:
        diff = world.oracle.compare_range(obj, float(radius), entries)
        if diff["false_positives"] or diff["distance_errors"]:
            world.mismatches.append(
                f"range(qseed={qseed}, r={radius}): {diff}"
            )
        elif diff["false_negatives"] and not world.scenario.faults_active:
            world.mismatches.append(
                f"range(qseed={qseed}, r={radius}): "
                f"false negative(s) {diff['false_negatives']}"
            )
    return f"{len(entries)} results"


def _op_knn(world: World, qseed: int, k: int) -> str:
    obj = world._query_object(int(qseed))
    res = knn_search(
        world.platform, world.name, obj, k=int(k),
        source_node=world._live_source(), checker=world.partition,
    )
    for oid, d in zip(res.object_ids, res.distances):
        world._digest(int(oid), float(d).hex())
    world._digest("rounds", res.rounds, "exact", res.exact)
    if world.oracle is not None and res.exact and not world.scenario.faults_active:
        expected = world.oracle.knn(obj, int(k))
        got = [(int(o), float(d)) for o, d in zip(res.object_ids, res.distances)]
        if got != expected:
            world.mismatches.append(
                f"knn(qseed={qseed}, k={k}): got {got} expected {expected}"
            )
    return f"{len(res.object_ids)} neighbours in {res.rounds} rounds"


def _op_insert(world: World, oseed: int) -> str:
    candidates = sorted(
        set(range(world.scenario.n_objects)) - set(world._indexed_ids())
    )
    if not candidates:
        world._digest("skip")
        return "skipped (all indexed)"
    oid = candidates[int(oseed) % len(candidates)]
    world.updates.insert(oid, source_node=world._live_source())
    if world.oracle is not None:
        world.oracle.add(oid)
    world._digest("inserted", oid)
    return f"object {oid}"


def _op_delete(world: World, oseed: int) -> str:
    indexed = world._indexed_ids()
    if not indexed:
        world._digest("skip")
        return "skipped (index empty)"
    oid = indexed[int(oseed) % len(indexed)]
    world.updates.delete(oid, source_node=world._live_source())
    if world.oracle is not None:
        world.oracle.remove(oid)
    world._digest("deleted", oid)
    return f"object {oid}"


def _op_join(world: World, jseed: int) -> str:
    ring = world.platform.ring
    nid = int(np.random.default_rng(int(jseed)).integers(0, 1 << world.scenario.m))
    while nid in ring.nodes_by_id:
        nid = (nid + 1) % (1 << world.scenario.m)
    host = nid % world.platform.latency.n_hosts
    ring.add_node(nid, name=f"join-{nid:x}", host=host)
    for index in world.platform.indexes.values():
        index.distribute()
    world._digest("joined", nid)
    return f"node {nid:#x}"


def _op_leave(world: World, pseed: int) -> str:
    ring = world.platform.ring
    nodes = ring.nodes()
    if len(nodes) <= 4:
        world._digest("skip")
        return "skipped (ring too small)"
    node = nodes[int(pseed) % len(nodes)]
    ring.remove_node(node)
    for index in world.platform.indexes.values():
        index.distribute()
    world._digest("left", node.id)
    return f"node {node.id:#x}"


def _op_crash(world: World, pseed: int) -> str:
    nodes = world.platform.ring.nodes()
    if len(nodes) <= 4:
        world._digest("skip")
        return "skipped (ring too small)"
    node = nodes[int(pseed) % len(nodes)]
    node.alive = False
    world.platform.fail_node(node)
    lost = world.index.rebuild_from_shards()
    if world.oracle is not None:
        world.oracle.restrict(int(i) for i in world.index._object_ids)
    world._digest("crashed", node.id, "lost", lost)
    return f"node {node.id:#x}, {lost} entries lost"


def _op_rebalance(world: World) -> str:
    moved = world.index.distribute()
    world._digest("moved", moved)
    return f"{moved} entries moved"


_OPS = {
    "range": _op_range,
    "knn": _op_knn,
    "insert": _op_insert,
    "delete": _op_delete,
    "join": _op_join,
    "leave": _op_leave,
    "crash": _op_crash,
    "rebalance": _op_rebalance,
}


def execute_scenario(scenario: Scenario, differential: bool = False) -> RunReport:
    """Run a scenario start to finish; returns its report + fingerprint."""
    world = build_world(scenario, differential=differential)
    applied = 0
    for op in scenario.ops:
        apply_op(world, op)
        applied += 1
    checks = world.invariants.summary()
    for name, count in world.partition.checks.items():
        checks[f"partition.{name}"] = count
    checks["violations"] += len(world.partition.violations)
    return RunReport(
        scenario=scenario,
        fingerprint=world.fingerprint(applied),
        timeline=world.timeline,
        mismatches=world.mismatches,
        checks=checks,
    )


def random_scenario(seed: int, n_ops: int = 20, **overrides: Any) -> Scenario:
    """A seed-derived scenario: weighted random operation mix.

    Queries dominate (they are what the system is *for*); churn, updates and
    rebalances are sprinkled in.  All randomness comes from ``seed``, so the
    same call always builds the same scenario.
    """
    rng = np.random.default_rng(seed)
    sc = Scenario(seed=int(seed), **overrides)
    kinds = ["range", "range", "range", "knn", "insert", "delete",
             "join", "leave", "crash", "rebalance"]
    for _ in range(n_ops):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        if kind == "range":
            sc.ops.append(["range", int(rng.integers(0, 2**31)),
                           round(float(rng.uniform(5.0, 60.0)), 3)])
        elif kind == "knn":
            sc.ops.append(["knn", int(rng.integers(0, 2**31)),
                           int(rng.integers(1, 8))])
        elif kind == "rebalance":
            sc.ops.append(["rebalance"])
        else:
            sc.ops.append([kind, int(rng.integers(0, 2**31))])
    return sc


# -- current-scenario registry (repro bundles on test failure) -------------------
#
# A fuzz machine publishes the scenario it is executing; if the enclosing
# test fails, the pytest plugin reads it back and dumps a replay bundle.
# Process-global is correct here: tests run single-threaded and the value
# only matters between a failure and its report hook.

_current_scenario: Scenario | None = None


def attach_scenario(scenario: Scenario | None) -> None:
    """Publish the scenario now executing (bundle-dumped if the test fails)."""
    global _current_scenario
    _current_scenario = scenario


def current_scenario() -> Scenario | None:
    return _current_scenario


def clear_scenario() -> None:
    attach_scenario(None)


# -- replay logs / repro bundles -------------------------------------------------


def write_bundle(
    path: Any, scenario: Scenario,
    fingerprint: RunFingerprint | None = None,
    error: str | None = None,
) -> None:
    """Write a replay log (= repro bundle) as one JSON document."""
    doc: dict[str, Any] = {"scenario": scenario.to_dict()}
    if fingerprint is not None:
        doc["fingerprint"] = fingerprint.to_dict()
    if error is not None:
        doc["error"] = error
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def record_run(scenario: Scenario, path: Any, differential: bool = False) -> RunReport:
    """Execute ``scenario`` and write its replay log to ``path``."""
    report = execute_scenario(scenario, differential=differential)
    write_bundle(path, scenario, fingerprint=report.fingerprint)
    return report


def replay_file(path: Any, differential: bool = False) -> tuple[bool, list[str], RunReport]:
    """Re-execute a replay log; returns ``(identical, diffs, report)``.

    ``identical`` is True when the re-run's fingerprint matches the recorded
    one field for field — same event count, same event schedule CRC, same
    fault draws, same results, same span count.
    """
    with open(path) as fh:
        doc = json.load(fh)
    scenario = Scenario.from_dict(doc["scenario"])
    report = execute_scenario(scenario, differential=differential)
    recorded = doc.get("fingerprint")
    if recorded is None:
        return True, [], report
    diffs = RunFingerprint.from_dict(recorded).diff(report.fingerprint)
    return not diffs, diffs, report
