"""Differential fuzzing: random op sequences, lockstep with the oracle.

A Hypothesis :class:`~hypothesis.stateful.RuleBasedStateMachine` drives a
live :class:`~repro.check.replay.World` through random interleavings of
joins, leaves, crashes, inserts, deletes, range queries, k-NN searches and
rebalances.  After every operation:

* every distributed query answer is diffed against the
  :class:`~repro.check.oracle.LinearScanOracle` (faults-off runs must match
  *exactly* — ids and bit-identical distances; faults-on runs must never
  return a false positive);
* the full invariant suite runs (ring consistency, exactly-one-owner
  placement, branch conservation, span reconciliation, partition tiling —
  see :mod:`repro.check.invariants`).

The machine appends each executed op to a :class:`~repro.check.replay.Scenario`
and publishes it via :func:`~repro.check.replay.attach_scenario`, so when
Hypothesis finds (and shrinks) a failing sequence, the pytest plugin
(:mod:`repro.check.pytest_plugin`) can dump the *minimal* scenario as a
replay bundle — ``repro replay <bundle>`` then reproduces the failure
bit-identically.

:class:`BuggyOwnershipMachine` seeds an intentional placement bug (one
entry stored under a corrupted key, i.e. on the wrong owner) to prove the
fuzzer actually catches ownership violations as differential false
negatives.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.check.replay import Scenario, apply_op, attach_scenario, build_world

__all__ = [
    "DifferentialMachine",
    "FaultyTransportMachine",
    "BuggyOwnershipMachine",
]

_SEEDS = st.integers(0, 2**31 - 1)


class DifferentialMachine(RuleBasedStateMachine):
    """Random-op state machine, faults off: answers must be oracle-exact."""

    #: scenario template; subclasses override to change scale or faults
    SCENARIO = dict(
        seed=7, n_nodes=8, n_objects=48, dim=3, k=3, m=16, replication=2,
    )

    def __init__(self) -> None:
        super().__init__()
        self.scenario = Scenario(**self.SCENARIO)
        self.world = build_world(self.scenario, differential=True)
        self._seed_bug()
        attach_scenario(self.scenario)

    def _seed_bug(self) -> None:
        """Overridden by machines that plant an intentional defect."""

    def _apply(self, op: list[Any]) -> None:
        self.scenario.ops.append(op)
        apply_op(self.world, op)
        if self.world.mismatches:
            raise AssertionError(
                "differential mismatch: " + "; ".join(self.world.mismatches)
            )

    @rule(qseed=_SEEDS, radius=st.floats(5.0, 60.0))
    def range_query(self, qseed: int, radius: float) -> None:
        self._apply(["range", qseed, round(radius, 3)])

    @rule(qseed=_SEEDS, k=st.integers(1, 8))
    def knn_query(self, qseed: int, k: int) -> None:
        self._apply(["knn", qseed, k])

    @rule(oseed=_SEEDS)
    def insert(self, oseed: int) -> None:
        self._apply(["insert", oseed])

    @rule(oseed=_SEEDS)
    def delete(self, oseed: int) -> None:
        self._apply(["delete", oseed])

    @rule(jseed=_SEEDS)
    def join(self, jseed: int) -> None:
        self._apply(["join", jseed])

    @rule(pseed=_SEEDS)
    def leave(self, pseed: int) -> None:
        self._apply(["leave", pseed])

    @rule(pseed=_SEEDS)
    def crash(self, pseed: int) -> None:
        self._apply(["crash", pseed])

    @rule()
    def rebalance(self) -> None:
        self._apply(["rebalance"])


class FaultyTransportMachine(DifferentialMachine):
    """Same op mix under message loss and delay jitter.

    Exactness is no longer guaranteed — lost branches legitimately shrink
    recall — so the differential contract weakens to: queries terminate, no
    false positives, distances of returned ids bit-identical to the oracle,
    and every structural invariant still holds.
    """

    SCENARIO = dict(
        seed=11, n_nodes=8, n_objects=48, dim=3, k=3, m=16, replication=2,
        loss=0.05, jitter=0.005, fault_seed=3,
    )


class BuggyOwnershipMachine(DifferentialMachine):
    """Plants a wrong-owner entry: object 0's key has its top bit flipped,
    so its entry lands on the wrong node's shard and range queries covering
    the object miss it — a differential false negative the fuzzer must find
    (and shrink to a minimal op sequence)."""

    def _seed_bug(self) -> None:
        index = self.world.index
        pos = int(np.flatnonzero(index._object_ids == 0)[0])
        index._keys[pos] = np.uint64(
            int(index._keys[pos]) ^ (1 << (index.m - 1))
        )
        index.distribute()
