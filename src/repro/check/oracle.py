"""Centralized linear-scan oracle for differential testing.

The distributed index answers range and k-NN queries through landmark
projection, locality-preserving hashing, DHT routing and per-node
refinement; the oracle answers the same queries by brute force over the
same dataset with the same metric object.  Because the final refinement
step of the distributed path computes *true* metric distances with the
identical vectorised kernel (``metric.one_to_many`` over dataset rows),
faults-off runs must agree with the oracle **exactly** — same object ids,
bit-identical distances — and any divergence is a real bug, not noise.

The oracle tracks the set of currently-indexed object ids so inserts,
deletes and crash-induced entry loss keep it in lockstep with the index
(see :mod:`repro.check.replay` and :mod:`repro.check.fuzz`).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from repro.core.platform import take

__all__ = ["LinearScanOracle"]


class LinearScanOracle:
    """Brute-force reference answers over ``dataset`` with ``metric``."""

    def __init__(self, dataset: Any, metric: Any, ids: Iterable[int] | None = None) -> None:
        self.dataset = dataset
        self.metric = metric
        n = dataset.shape[0] if hasattr(dataset, "shape") else len(dataset)
        self.ids: set[int] = set(range(n)) if ids is None else set(int(i) for i in ids)

    # -- membership lockstep ----------------------------------------------------

    def add(self, oid: int) -> None:
        self.ids.add(int(oid))

    def remove(self, oid: int) -> None:
        self.ids.discard(int(oid))

    def restrict(self, ids: Iterable[int]) -> set[int]:
        """Intersect with ``ids`` (crash survivors); returns what was lost."""
        keep = set(int(i) for i in ids)
        lost = self.ids - keep
        self.ids &= keep
        return lost

    # -- reference answers ---------------------------------------------------------

    def _scan(self, obj: Any) -> tuple[np.ndarray, np.ndarray]:
        ids = np.asarray(sorted(self.ids), dtype=np.int64)
        if ids.size == 0:
            return ids, np.empty(0, dtype=np.float64)
        dists = self.metric.one_to_many(obj, take(self.dataset, ids))
        return ids, np.asarray(dists, dtype=np.float64)

    def range(self, obj: Any, radius: float) -> list[tuple[int, float]]:
        """All indexed objects within ``radius``, sorted by (distance, id)."""
        ids, dists = self._scan(obj)
        keep = dists <= radius
        out = sorted(zip(dists[keep].tolist(), ids[keep].tolist()))
        return [(int(oid), float(d)) for d, oid in out]

    def knn(self, obj: Any, k: int) -> list[tuple[int, float]]:
        """The ``k`` nearest indexed objects, ties broken by object id."""
        ids, dists = self._scan(obj)
        out = sorted(zip(dists.tolist(), ids.tolist()))[:k]
        return [(int(oid), float(d)) for d, oid in out]

    # -- differential comparison -------------------------------------------------------

    def compare_range(
        self, obj: Any, radius: float, entries: Iterable[Any]
    ) -> dict[str, list[int]]:
        """Diff a distributed result set against the reference answer.

        ``entries`` are ``ResultEntry``-like objects (``object_id`` +
        ``distance``).  Returns ``false_negatives`` (reference hits the
        distributed search missed), ``false_positives`` (returned ids the
        reference rejects) and ``distance_errors`` (ids whose reported
        distance is not bit-identical to the reference computation).
        """
        expected = dict(
            (oid, d) for oid, d in ((o, dd) for o, dd in self.range(obj, radius))
        )
        got: dict[int, float] = {}
        for e in entries:
            got[int(e.object_id)] = float(e.distance)
        false_neg = sorted(set(expected) - set(got))
        false_pos = sorted(set(got) - set(expected))
        dist_err = sorted(
            oid for oid in set(expected) & set(got) if expected[oid] != got[oid]
        )
        return {
            "false_negatives": false_neg,
            "false_positives": false_pos,
            "distance_errors": dist_err,
        }
