"""`repro lint` — AST static analysis for determinism, layering, contracts.

Three rule families guard what the dynamic harness (replay fingerprints,
differential fuzzing) can only detect after the fact:

* **DET1xx** (:mod:`repro.check.lint.determinism`) — wall-clock reads,
  ambient randomness, process-salted ``hash()``, set iteration feeding
  the event queue;
* **ARCH2xx** (:mod:`repro.check.lint.architecture`) — the declarative
  import-layering contract (``layers.toml``), scheduler-access
  containment, denied edges;
* **CON3xx** (:mod:`repro.check.lint.contracts`) — Metric subclasses
  implement the distance interface, message dataclasses are registered
  with the transport trace schema.

Violations either get fixed or grandfathered into ``lint-baseline.json``
with a justification; the gate is *zero unbaselined findings*.  See
``docs/static-analysis.md`` for the rule catalogue and workflows.
"""

from repro.check.lint.baseline import Baseline, BaselineEntry
from repro.check.lint.engine import (
    LintContext,
    LintResult,
    ModuleInfo,
    Rule,
    all_rules,
    apply_fixes,
    find_repo_root,
    run_lint,
)
from repro.check.lint.findings import Finding, FixEdit
from repro.check.lint.layers import DEFAULT_LAYERS_PATH, DenyEdge, LayersConfig

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DenyEdge",
    "DEFAULT_LAYERS_PATH",
    "Finding",
    "FixEdit",
    "LayersConfig",
    "LintContext",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "apply_fixes",
    "find_repo_root",
    "run_lint",
]
