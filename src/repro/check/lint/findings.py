"""Finding and fix-edit records shared by every lint rule.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* deliberately excludes the line number: baselines match on
``(rule, path, symbol, snippet)`` so grandfathered violations survive
unrelated edits above them, yet go stale the moment the offending line
itself changes or moves to another function.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["FixEdit", "Finding"]


@dataclass(frozen=True)
class FixEdit:
    """A single mechanical source replacement (0-based columns, 1-based lines).

    The span ``(line, col) .. (end_line, end_col)`` is replaced by
    ``replacement``; the engine applies edits bottom-up so earlier spans
    keep their coordinates.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: repo-relative posix path
    line: int
    col: int
    message: str
    symbol: str = "<module>"  #: enclosing ``class.def`` qualname
    snippet: str = ""  #: stripped source line, for baseline fingerprints
    fix: FixEdit | None = field(default=None, compare=False)

    @property
    def fixable(self) -> bool:
        return self.fix is not None

    def fingerprint(self) -> tuple[str, str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.symbol, self.snippet)

    def to_json(self) -> dict[str, object]:
        d = asdict(self)
        d.pop("fix", None)
        d["fixable"] = self.fixable
        return d

    def render(self) -> str:
        fix = " [fixable]" if self.fixable else ""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}{fix}"
