"""The declarative layering contract (``layers.toml``).

The architecture rules are driven entirely by data: ``layers.toml`` names
the layers of ``repro``, which layers each may import, explicitly denied
import edges (finer-grained than the layer grants), and the modules allowed
to touch the discrete-event scheduler directly.  Changing the architecture
contract is a diff to the TOML file, not to rule code.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["DenyEdge", "LayersConfig", "DEFAULT_LAYERS_PATH"]

#: the contract shipped with the package (the repo's own architecture)
DEFAULT_LAYERS_PATH = Path(__file__).with_name("layers.toml")


@dataclass(frozen=True)
class DenyEdge:
    """An explicitly forbidden import edge, with rationale and optional fix.

    ``src``/``dst`` are module prefixes (``repro.core`` matches
    ``repro.core.platform``).  ``use`` names the sanctioned module to import
    the same symbols from — when present, ``--fix`` rewrites the import.
    """

    src: str
    dst: str
    why: str
    use: str | None = None

    def matches(self, importer: str, imported: str) -> bool:
        return _has_prefix(importer, self.src) and _has_prefix(imported, self.dst)


def _has_prefix(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@dataclass
class LayersConfig:
    """Parsed layering contract.

    ``layers`` maps layer name -> tuple of layer names it may import
    (its own layer is always implicitly allowed).  ``module_layers`` pins
    specific modules (e.g. ``repro.cli``) to a layer; otherwise a module's
    layer is its first package component under the root package.
    """

    package: str = "repro"
    layers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    module_layers: dict[str, str] = field(default_factory=dict)
    default_layer: str = "app"
    deny: tuple[DenyEdge, ...] = ()
    scheduler_allowed: tuple[str, ...] = ()

    @classmethod
    def load(cls, path: str | Path | None = None) -> LayersConfig:
        p = Path(path) if path is not None else DEFAULT_LAYERS_PATH
        with open(p, "rb") as fh:
            doc = tomllib.load(fh)
        layers = {name: tuple(allowed) for name, allowed in doc.get("layers", {}).items()}
        deny = tuple(
            DenyEdge(
                src=e["from"],
                dst=e["to"],
                why=e.get("why", "forbidden import edge"),
                use=e.get("use"),
            )
            for e in doc.get("deny", ())
        )
        cfg = cls(
            package=doc.get("package", "repro"),
            layers=layers,
            module_layers=dict(doc.get("modules", {})),
            default_layer=doc.get("default-layer", "app"),
            deny=deny,
            scheduler_allowed=tuple(doc.get("scheduler", {}).get("allowed", ())),
        )
        cfg.validate()
        return cfg

    def validate(self) -> None:
        for name, allowed in self.layers.items():
            for dep in allowed:
                if dep not in self.layers:
                    raise ValueError(f"layer {name!r} allows unknown layer {dep!r}")
        for module, layer in self.module_layers.items():
            if layer not in self.layers:
                raise ValueError(f"module {module!r} pinned to unknown layer {layer!r}")
        if self.default_layer not in self.layers:
            raise ValueError(f"default layer {self.default_layer!r} is not declared")

    def layer_of(self, module: str) -> str | None:
        """The layer of a dotted module name, ``None`` outside the package."""
        if not _has_prefix(module, self.package):
            return None
        if module in self.module_layers:
            return self.module_layers[module]
        rest = module[len(self.package) :].lstrip(".")
        if not rest:
            return self.module_layers.get(self.package, self.default_layer)
        head = rest.split(".", 1)[0]
        return head if head in self.layers else self.default_layer

    def allowed(self, importer: str, imported: str) -> bool:
        """Whether the layer contract permits ``importer`` -> ``imported``."""
        src_layer = self.layer_of(importer)
        dst_layer = self.layer_of(imported)
        if src_layer is None or dst_layer is None:
            return True  # edges outside the package are not ours to police
        if src_layer == dst_layer:
            return True
        return dst_layer in self.layers.get(src_layer, ())

    def denied(self, importer: str, imported: str) -> DenyEdge | None:
        """The deny entry forbidding this edge, if any (checked before layers)."""
        for edge in self.deny:
            if edge.matches(importer, imported):
                return edge
        return None

    def scheduler_ok(self, module: str) -> bool:
        return any(_has_prefix(module, allowed) for allowed in self.scheduler_allowed)
