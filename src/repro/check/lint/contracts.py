"""Contract rules (CON3xx): interface obligations the type system can't see.

* **CON301** — every direct ``Metric`` subclass implements ``distance``.
  The metric axioms are the API contract of the whole index (paper §2,
  Definition 1); a subclass silently inheriting ``raise NotImplementedError``
  only fails at query time.
* **CON302** — every ``@dataclass`` message type (name ending in
  ``Message``) is registered with the transport's trace schema
  (:func:`repro.sim.messages.register_message`), so trace consumers can
  rely on the schema covering every message that can appear on the wire.
* **CON303** — every ``@register_message`` dataclass declares
  ``slots=True``.  Messages are the highest-volume allocation in a
  simulation; a slotted instance skips the per-object ``__dict__``, and one
  unslotted message type silently costs the event loop its footprint win.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.check.lint.engine import LintContext, ModuleInfo, Rule, rule
from repro.check.lint.findings import Finding

__all__ = ["MetricInterfaceRule", "MessageSchemaRule", "MessageSlotsRule"]

#: dotted names that resolve to the Metric base class
_METRIC_BASES = {"Metric", "repro.metric.Metric", "repro.metric.base.Metric"}


def _in_repro(module: ModuleInfo) -> bool:
    return module.module is not None and (
        module.module == "repro" or module.module.startswith("repro.")
    )


def _decorator_names(cls: ast.ClassDef, module: ModuleInfo) -> set[str]:
    names: set[str] = set()
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = module.resolve(target)
        if resolved:
            names.add(resolved)
            names.add(resolved.rsplit(".", 1)[-1])
        elif isinstance(target, ast.Name):
            names.add(target.id)  # bound in this module (e.g. same-file decorator)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


@rule
class MetricInterfaceRule(Rule):
    id = "CON301"
    name = "metric-distance-interface"
    rationale = (
        "Metric is the black-box distance contract (Definition 1); a "
        "direct subclass without `distance` ships a metric that raises "
        "NotImplementedError at query time."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._derives_from_metric(node, module):
                continue
            if not self._defines(node, "distance"):
                yield module.finding(
                    self.id, node,
                    f"Metric subclass `{node.name}` does not define "
                    "`distance(self, x, y)` — the black-box contract of "
                    "every index layer",
                )

    @staticmethod
    def _derives_from_metric(node: ast.ClassDef, module: ModuleInfo) -> bool:
        for base in node.bases:
            resolved = module.resolve(base)
            if resolved in _METRIC_BASES:
                return True
        return False

    @staticmethod
    def _defines(node: ast.ClassDef, name: str) -> bool:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name == name:
                return True
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == name for t in stmt.targets
            ):
                return True
        return False


@rule
class MessageSchemaRule(Rule):
    id = "CON302"
    name = "message-trace-schema"
    rationale = (
        "Trace consumers (replay diffing, span reconciliation, CI "
        "artifact dashboards) need a schema for every message dataclass; "
        "registration keeps the schema exhaustive by construction."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not node.name.endswith("Message"):
                continue
            decorators = _decorator_names(node, module)
            if "dataclass" not in decorators:
                continue
            if "register_message" not in decorators:
                yield module.finding(
                    self.id, node,
                    f"message dataclass `{node.name}` is not registered with "
                    "the transport trace schema — decorate it with "
                    "@register_message (repro.sim.messages)",
                )


@rule
class MessageSlotsRule(Rule):
    id = "CON303"
    name = "message-dataclass-slots"
    rationale = (
        "Messages dominate simulation allocations; `@dataclass(slots=True)` "
        "drops the per-instance __dict__, and one unslotted type quietly "
        "forfeits the event loop's memory footprint."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if "register_message" not in _decorator_names(node, module):
                continue
            if not self._dataclass_has_slots(node, module):
                yield module.finding(
                    self.id, node,
                    f"registered message `{node.name}` is not slotted — "
                    "declare it with @dataclass(slots=True)",
                )

    @staticmethod
    def _dataclass_has_slots(node: ast.ClassDef, module: ModuleInfo) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            resolved = module.resolve(target)
            name = (resolved or "").rsplit(".", 1)[-1] or (
                target.id if isinstance(target, ast.Name) else
                target.attr if isinstance(target, ast.Attribute) else ""
            )
            if name != "dataclass":
                continue
            if not isinstance(dec, ast.Call):
                return False  # bare @dataclass — no slots
            for kw in dec.keywords:
                if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                    return kw.value.value is True
            return False
        return False
