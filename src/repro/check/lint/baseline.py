"""Baseline file: grandfathered violations with per-entry justifications.

The baseline is a small JSON document checked into the repository root
(``lint-baseline.json``).  Every entry names one existing violation the
team has decided to keep, together with a human-readable justification —
the lint gate stays at *zero unbaselined findings* while the debt is paid
down incrementally.

Entries match findings by fingerprint (``rule``, ``path``, ``symbol``,
``snippet``); see :meth:`repro.check.lint.findings.Finding.fingerprint`.
An entry that no longer matches anything is *stale* and reported as an
error, so the baseline can only ever shrink by deleting paid-down entries.

Monotonicity is enforced by a ``budget`` integer stored in the document:
the gate fails when the entry count exceeds the budget (debt grew) or any
entry still carries the placeholder justification.  ``save`` ratchets the
budget down to the surviving entry count, so once debt is paid it cannot
quietly come back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.check.lint.findings import Finding

__all__ = ["BaselineEntry", "Baseline"]

_UNJUSTIFIED = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation and why it is allowed to stay."""

    rule: str
    path: str
    symbol: str
    snippet: str
    justification: str = _UNJUSTIFIED

    def fingerprint(self) -> tuple[str, str, str, str]:
        return (self.rule, self.path, self.symbol, self.snippet)


class Baseline:
    """An ordered set of :class:`BaselineEntry`, loaded from / saved as JSON."""

    def __init__(
        self,
        entries: tuple[BaselineEntry, ...] = (),
        budget: int | None = None,
    ) -> None:
        self.entries = tuple(entries)
        self.budget = budget
        self._index = {e.fingerprint(): e for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def violations(self) -> list[str]:
        """Monotonicity-gate failures: over-budget growth and entries still
        carrying the placeholder justification.  Empty means the baseline
        is healthy; anything here fails the lint gate."""
        problems: list[str] = []
        if self.budget is not None and len(self.entries) > self.budget:
            problems.append(
                f"baseline grew: {len(self.entries)} entrie(s) exceed the "
                f"budget of {self.budget} — fix the new finding instead of "
                "baselining it (the budget only ratchets down)"
            )
        for e in self.entries:
            if "TODO" in e.justification or not e.justification.strip():
                problems.append(
                    f"baseline entry {e.rule} {e.path} ({e.symbol}) has no "
                    "real justification — write one or fix the finding"
                )
        return problems

    def match(self, finding: Finding) -> BaselineEntry | None:
        return self._index.get(finding.fingerprint())

    def stale_entries(
        self, findings: list[Finding], scanned_paths: set[str] | None = None
    ) -> list[BaselineEntry]:
        """Entries that matched none of ``findings`` — paid-down debt.

        An entry only goes stale when its file was actually scanned
        (``scanned_paths``); linting a single file must not invalidate the
        rest of the baseline.
        """
        seen = {f.fingerprint() for f in findings}
        return [
            e for e in self.entries
            if e.fingerprint() not in seen
            and (scanned_paths is None or e.path in scanned_paths)
        ]

    @classmethod
    def load(cls, path: str | Path | None) -> Baseline:
        if path is None or not Path(path).exists():
            return cls()
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = tuple(
            BaselineEntry(
                rule=e["rule"],
                path=e["path"],
                symbol=e.get("symbol", "<module>"),
                snippet=e.get("snippet", ""),
                justification=e.get("justification", _UNJUSTIFIED),
            )
            for e in doc.get("entries", ())
        )
        budget = doc.get("budget")
        return cls(entries, budget=int(budget) if budget is not None else None)

    @classmethod
    def from_findings(cls, findings: list[Finding], old: Baseline | None = None) -> Baseline:
        """Baseline covering ``findings``, keeping justifications from ``old``."""
        entries = []
        seen: set[tuple[str, str, str, str]] = set()
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            fp = f.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            kept = old.match(f) if old is not None else None
            entries.append(
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    symbol=f.symbol,
                    snippet=f.snippet,
                    justification=kept.justification if kept else _UNJUSTIFIED,
                )
            )
        budget = old.budget if old is not None else None
        return cls(tuple(entries), budget=budget)

    def save(self, path: str | Path) -> None:
        # the budget only ever ratchets down: saving records the smaller of
        # the previous budget and what actually survived
        budget = len(self.entries)
        if self.budget is not None:
            budget = min(self.budget, budget)
        doc = {
            "_comment": (
                "Grandfathered `repro lint` violations; every entry needs a "
                "justification. Delete entries as the debt is paid down — "
                "stale entries fail the lint gate, and the budget only "
                "ratchets down (growth fails CI)."
            ),
            "budget": budget,
            "entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "symbol": e.symbol,
                    "snippet": e.snippet,
                    "justification": e.justification,
                }
                for e in self.entries
            ],
        }
        Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
