"""Determinism rules (DET1xx).

The replay harness (PR 4) proves a run is bit-identical *after the fact*;
these rules stop the classic divergence sources from entering the tree in
the first place:

* **DET101** — wall-clock reads.  Simulation time is ``sim.now``; a
  ``time.time()`` in protocol code makes fingerprints machine-dependent.
* **DET102** — ambient randomness.  Module-level ``random.*`` calls and
  unseeded ``Random()`` / ``default_rng()`` constructions draw from global
  or fresh entropy the scenario seed does not control.
* **DET103** — builtin ``hash()``.  String/bytes hashing is salted per
  process (``PYTHONHASHSEED``); identifiers must come from
  :mod:`repro.dht.hashing` (SHA-1) or ``zlib.crc32``.
* **DET104** — set iteration feeding the event queue.  ``set`` order is
  insertion-and-hash dependent; iterating one while scheduling events or
  emitting messages makes the schedule digest fragile.  Wrap in
  ``sorted(...)``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.check.lint.engine import LintContext, ModuleInfo, Rule, rule
from repro.check.lint.findings import Finding, FixEdit

__all__ = ["WallClockRule", "AmbientRandomnessRule", "BuiltinHashRule", "SetIterationRule"]

#: functions whose return value is the host's clock, not the simulation's
_WALLCLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: ``random``-module constructors that accept a seed as first argument
_SEEDABLE = {"random.Random", "numpy.random.default_rng", "numpy.random.RandomState"}

#: ``numpy.random`` attributes that are *not* draws from the global stream
_NUMPY_RANDOM_OK = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.BitGenerator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

#: modules exempt from DET101 — benchmarking *measures* wall-clock by
#: definition; nothing in repro.bench runs inside a simulation, and the
#: live network backend (repro.net) runs on real sockets where the host's
#: monotonic clock IS the transport clock.
_WALLCLOCK_ALLOWED = ("repro.bench", "repro.net")

#: modules exempt from DET103 (the sanctioned hashing home)
_HASH_ALLOWED = ("repro.dht.hashing",)

#: method/function names that put work on the event queue or emit messages
_SCHEDULING_SINKS = {
    "send",
    "control",
    "timer",
    "timer_cancelable",
    "at_cancelable",
    "schedule_in",
    "schedule_at",
}


def _in_repro(module: ModuleInfo) -> bool:
    return module.module is not None and (
        module.module == "repro" or module.module.startswith("repro.")
    )


@rule
class WallClockRule(Rule):
    id = "DET101"
    name = "wall-clock-read"
    rationale = (
        "Simulated components must read time from the simulator clock "
        "(`sim.now`); host-clock reads diverge between machines and runs."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        mod = module.module or ""
        if any(mod == a or mod.startswith(a + ".") for a in _WALLCLOCK_ALLOWED):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve(node.func)
            if target in _WALLCLOCK:
                yield module.finding(
                    self.id, node,
                    f"wall-clock read `{target}()` — use the simulation clock "
                    "(`sim.now`) instead",
                )


@rule
class AmbientRandomnessRule(Rule):
    id = "DET102"
    name = "ambient-randomness"
    rationale = (
        "Every random draw must come from a generator derived from the "
        "scenario seed; global-stream calls and unseeded constructors "
        "escape the replay fingerprint."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = module.resolve(node.func)
            if target is None:
                continue
            if target in _SEEDABLE:
                if self._unseeded(node):
                    yield module.finding(
                        self.id, node,
                        f"unseeded `{target.rsplit('.', 1)[-1]}()` — pass an "
                        "explicit seed (or a generator from repro.util.rng)",
                        fix=_seed_fix(node),
                    )
            elif target.startswith("random.") and target.count(".") == 1:
                if target not in ("random.Random", "random.SystemRandom"):
                    yield module.finding(
                        self.id, node,
                        f"global-stream call `{target}()` — use a seeded "
                        "`random.Random(seed)` or numpy Generator",
                    )
            elif target.startswith("numpy.random.") and target not in _NUMPY_RANDOM_OK:
                yield module.finding(
                    self.id, node,
                    f"legacy global-stream call `{target}()` — use "
                    "`numpy.random.default_rng(seed)`",
                )

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            return isinstance(first, ast.Constant) and first.value is None
        for kw in node.keywords:
            if kw.arg in ("seed", "x") and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                return False
        return True


def _seed_fix(node: ast.Call) -> FixEdit | None:
    """Mechanical fix: make the unseeded constructor explicit with seed 0."""
    if node.args or node.keywords or node.end_lineno is None or node.end_col_offset is None:
        return None  # only the bare `f()` form is safely mechanical
    return FixEdit(
        line=node.end_lineno,
        col=node.end_col_offset - 2,
        end_line=node.end_lineno,
        end_col=node.end_col_offset,
        replacement="(0)",
    )


@rule
class BuiltinHashRule(Rule):
    id = "DET103"
    name = "builtin-hash"
    rationale = (
        "`hash()` on str/bytes is salted per process (PYTHONHASHSEED); "
        "stable identifiers come from repro.dht.hashing or zlib.crc32."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module) or module.module in _HASH_ALLOWED:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if module.resolve(node.func) == "hash":
                yield module.finding(
                    self.id, node,
                    "builtin `hash()` is process-salted for str/bytes — use "
                    "repro.dht.hashing.hash_to_id or zlib.crc32",
                )


@rule
class SetIterationRule(Rule):
    id = "DET104"
    name = "set-iteration-scheduling"
    rationale = (
        "Iterating a set fixes an arbitrary order; when that order reaches "
        "the event queue or the wire, the schedule digest depends on hash "
        "seeds and insertion history. Iterate `sorted(...)` instead."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._schedules(fn):
                continue
            set_names = _set_typed_names(fn)
            for loop in ast.walk(fn):
                iters: list[ast.expr] = []
                if isinstance(loop, (ast.For, ast.AsyncFor)):
                    iters = [loop.iter]
                elif isinstance(loop, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                    iters = [gen.iter for gen in loop.generators]
                for it in iters:
                    if _is_set_expr(it, set_names):
                        yield module.finding(
                            self.id, it,
                            "iteration over an unordered set in a function "
                            "that schedules events/messages — wrap the "
                            "iterable in sorted(...)",
                        )

    @staticmethod
    def _schedules(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULING_SINKS
            ):
                return True
        return False


def _set_typed_names(fn: ast.AST) -> set[str]:
    """Local names bound to an obviously set-typed expression."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ann = node.annotation
            txt = ast.unparse(ann) if ann is not None else ""
            if txt.startswith(("set[", "set", "frozenset")):
                names.add(node.target.id)
    return names


_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference", "copy"}


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, set_names)
        ):
            return True
    return False
