"""The lint engine: file discovery, AST plumbing, rule driving, fixes.

The engine owns everything rules share so each rule stays a small pure
function over an AST:

* :class:`ModuleInfo` — one parsed source file with its dotted module name,
  an import-alias table (``np`` -> ``numpy``), and symbol enclosures
  (finding line -> ``Class.method`` qualname);
* :class:`LintContext` — the project-wide view: every scanned module plus
  the :class:`~repro.check.lint.layers.LayersConfig` contract;
* :func:`run_lint` — discover, parse, run every registered rule, split
  findings against the baseline;
* :func:`apply_fixes` — apply the mechanical :class:`FixEdit` patches
  bottom-up, one rewrite per file.

Rules self-register through the :func:`rule` decorator; importing
:mod:`repro.check.lint` pulls in the three rule families.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.check.lint.baseline import Baseline
from repro.check.lint.findings import Finding, FixEdit
from repro.check.lint.layers import LayersConfig

__all__ = [
    "ModuleInfo",
    "LintContext",
    "LintResult",
    "Rule",
    "rule",
    "all_rules",
    "run_lint",
    "apply_fixes",
    "find_repo_root",
]

#: fixture files may pin their dotted module name for architecture rules:
#: ``# lint-fixture-module: repro.obs.bad`` in the first few lines.
_MODULE_DIRECTIVE = "# lint-fixture-module:"


@dataclass
class ModuleInfo:
    """One parsed source file and the derived lookup tables rules need."""

    path: Path
    relpath: str
    module: str | None
    source: str
    tree: ast.Module
    is_package: bool = False  #: True for `__init__.py` (affects relative imports)
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        self._imports = _import_table(self.tree)
        self._scopes = _symbol_spans(self.tree)

    # -- source helpers ------------------------------------------------------

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def symbol_at(self, line: int) -> str:
        """Innermost enclosing ``Class.def`` qualname of a line."""
        best = "<module>"
        best_size = None
        for start, end, qualname in self._scopes:
            if start <= line <= end and (best_size is None or end - start < best_size):
                best, best_size = qualname, end - start
        return best

    def finding(self, rule_id: str, node: ast.AST, message: str,
                fix: FixEdit | None = None) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule_id,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            symbol=self.symbol_at(line),
            snippet=self.snippet(line),
            fix=fix,
        )

    # -- name resolution -----------------------------------------------------

    def resolve(self, node: ast.AST) -> str | None:
        """Resolve a Name/Attribute chain to a dotted path via the imports.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the module did ``import numpy as np``.  A bare builtin name
        (never imported or assigned at module level) resolves to itself.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        target = self._imports.get(head)
        if target is None:
            if head in self._module_bindings():
                return None  # shadowed by a module-level def/assignment
            target = head
        parts.append(target)
        return ".".join(reversed(parts))

    def _module_bindings(self) -> set[str]:
        bound = getattr(self, "_bound", None)
        if bound is None:
            bound = set()
            for stmt in self.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(stmt.name)
                elif isinstance(stmt, ast.Assign):
                    for t in stmt.targets:
                        if isinstance(t, ast.Name):
                            bound.add(t.id)
                elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
            self._bound = bound
        return bound

    def import_nodes(self) -> Iterator[tuple[ast.stmt, str]]:
        """Every import statement with the dotted module it pulls from.

        ``from x import a`` yields ``(node, "x")`` once; ``import x, y``
        yields once per alias.  Relative imports are resolved against this
        module's package.
        """
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                yield node, self._resolve_from(node)

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        base = (self.module or "").split(".")
        # level 1 = current package: a plain module drops its own leaf name,
        # a package __init__ already *is* the package
        drop = node.level - 1 if self.is_package else node.level
        base = base[: len(base) - drop] if base else []
        if node.module:
            base.append(node.module)
        return ".".join(base)


def _import_table(tree: ast.Module) -> dict[str, str]:
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.split(".", 1)[0]] = alias.name.split(".", 1)[0]
        elif isinstance(node, ast.ImportFrom) and not node.level and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _symbol_spans(tree: ast.Module) -> list[tuple[int, int, str]]:
    spans: list[tuple[int, int, str]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                spans.append((child.lineno, child.end_lineno or child.lineno, qualname))
                visit(child, qualname)
            else:
                visit(child, prefix)

    visit(tree, "")
    return spans


@dataclass
class LintContext:
    """Project-wide state shared by every rule invocation."""

    layers: LayersConfig
    modules: dict[str, ModuleInfo] = field(default_factory=dict)


class Rule:
    """One lint rule: an id, a rationale, and a check over one module."""

    id: str = ""
    name: str = ""
    rationale: str = ""

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule instance under its id."""
    inst = cls()
    if not inst.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if inst.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {inst.id}")
    _REGISTRY[inst.id] = inst
    return cls


def all_rules() -> list[Rule]:
    _load_rule_modules()
    return [r for _, r in sorted(_REGISTRY.items())]


def _load_rule_modules() -> None:
    # import side-effect registers the rule classes exactly once
    from repro.check.lint import (  # noqa: F401
        architecture,
        async_safety,
        contracts,
        determinism,
        protocol,
    )


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)  #: not in the baseline
    baselined: list[Finding] = field(default_factory=list)
    stale: list[Any] = field(default_factory=list)  #: baseline entries matching nothing
    errors: list[str] = field(default_factory=list)  #: unparseable files
    baseline_problems: list[str] = field(default_factory=list)  #: monotonicity gate
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return (
            not self.findings
            and not self.stale
            and not self.errors
            and not self.baseline_problems
        )

    @property
    def all_findings(self) -> list[Finding]:
        return sorted(
            self.findings + self.baselined, key=lambda f: (f.path, f.line, f.col, f.rule)
        )


def find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding ``pyproject.toml``."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return cur


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts and not f.name.startswith(".")
            )
        elif p.suffix == ".py":
            files.append(p)
    return files


def module_name_for(path: Path, package: str = "repro") -> str | None:
    """Dotted module name of a file, or ``None`` outside the package.

    The name is derived from the path components starting at the last
    ``package`` component (``src/repro/core/platform.py`` ->
    ``repro.core.platform``); fixture files may override it with a
    ``# lint-fixture-module: <name>`` directive near the top.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == package:
            return ".".join(parts[i:])
    return None


def _directive_module(source: str) -> str | None:
    for line in source.splitlines()[:5]:
        line = line.strip()
        if line.startswith(_MODULE_DIRECTIVE):
            return line[len(_MODULE_DIRECTIVE) :].strip()
    return None


def load_module(path: Path, root: Path, package: str = "repro") -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module = _directive_module(source) or module_name_for(path, package)
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return ModuleInfo(
        path=path, relpath=relpath, module=module, source=source, tree=tree,
        is_package=path.name == "__init__.py",
    )


def run_lint(
    paths: Iterable[str | Path],
    *,
    root: Path | None = None,
    layers: LayersConfig | None = None,
    baseline: Baseline | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint ``paths`` and split the findings against the baseline."""
    files = discover_files(paths)
    if root is None:
        root = find_repo_root(files[0] if files else Path.cwd())
    if layers is None:
        layers = LayersConfig.load()
    if baseline is None:
        baseline = Baseline()
    ctx = LintContext(layers=layers)
    result = LintResult(files_scanned=len(files))
    modules: list[ModuleInfo] = []
    for f in files:
        try:
            info = load_module(f, root, layers.package)
        except SyntaxError as exc:
            result.errors.append(f"{f}: {exc.msg} (line {exc.lineno})")
            continue
        modules.append(info)
        if info.module is not None:
            ctx.modules[info.module] = info
    wanted = set(select) if select is not None else None
    all_found: list[Finding] = []
    for r in all_rules():
        if wanted is not None and r.id not in wanted:
            continue
        for info in modules:
            all_found.extend(r.check(info, ctx))
    all_found.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    for f in all_found:
        if baseline.match(f) is not None:
            result.baselined.append(f)
        else:
            result.findings.append(f)
    result.stale = baseline.stale_entries(
        all_found, scanned_paths={m.relpath for m in modules}
    )
    result.baseline_problems = baseline.violations()
    return result


def apply_fixes(findings: Iterable[Finding], root: Path) -> int:
    """Apply every finding's :class:`FixEdit` to disk; returns edits applied.

    Edits are grouped per file and applied bottom-up so line/column
    coordinates stay valid; overlapping edits keep only the first.
    """
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        if f.fix is not None:
            by_file.setdefault(f.path, []).append(f)
    applied = 0
    for relpath, group in by_file.items():
        path = root / relpath
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        group.sort(key=lambda f: (f.fix.line, f.fix.col), reverse=True)
        last_start: tuple[int, int] | None = None
        for f in group:
            e = f.fix
            if last_start is not None and (e.end_line, e.end_col) > last_start:
                continue  # overlap: skip, a re-run will fix the rest
            head = lines[e.line - 1][: e.col]
            tail = lines[e.end_line - 1][e.end_col :]
            lines[e.line - 1 : e.end_line] = [head + e.replacement + tail]
            last_start = (e.line, e.col)
            applied += 1
        path.write_text("".join(lines), encoding="utf-8")
    return applied
