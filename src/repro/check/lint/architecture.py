"""Architecture rules (ARCH2xx), driven by the ``layers.toml`` contract.

* **ARCH201** — layer-order violation: a module imports a layer its own
  layer is not granted (``obs`` importing ``core``, ``metric`` importing
  anything above ``util``, ...).
* **ARCH202** — direct scheduler access: only the transport (and the
  engine itself) may put events on the discrete-event queue; protocol and
  library code goes through ``Transport.send``/``timer``/``at`` so faults,
  tracing and accounting cannot be bypassed.
* **ARCH203** — explicitly denied import edge (the ``[[deny]]`` entries),
  e.g. ``core`` reaching into ``repro.sim.engine`` internals instead of
  the ``repro.sim`` facade.  When the contract names a sanctioned facade
  (``use = "..."``) the violation is mechanically fixable.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.check.lint.engine import LintContext, ModuleInfo, Rule, rule
from repro.check.lint.findings import Finding, FixEdit

__all__ = ["LayerOrderRule", "SchedulerAccessRule", "DeniedEdgeRule"]

_SCHEDULER_METHODS = {"schedule_in", "schedule_at"}


def _package_module(module: ModuleInfo, ctx: LintContext) -> bool:
    pkg = ctx.layers.package
    return module.module is not None and (
        module.module == pkg or module.module.startswith(pkg + ".")
    )


@rule
class LayerOrderRule(Rule):
    id = "ARCH201"
    name = "layer-order"
    rationale = (
        "The layering contract in layers.toml is the architecture; an "
        "upward import couples a lower layer to its callers and breaks "
        "the isolation the index/partition/routing split depends on."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _package_module(module, ctx):
            return
        importer = module.module or ""
        for node, imported in module.import_nodes():
            if not imported:
                continue
            if ctx.layers.denied(importer, imported) is not None:
                continue  # ARCH203 reports it with the contract's rationale
            if not ctx.layers.allowed(importer, imported):
                src_layer = ctx.layers.layer_of(importer)
                dst_layer = ctx.layers.layer_of(imported)
                yield module.finding(
                    self.id, node,
                    f"layer `{src_layer}` may not import `{imported}` "
                    f"(layer `{dst_layer}`) — see layers.toml",
                )


@rule
class SchedulerAccessRule(Rule):
    id = "ARCH202"
    name = "scheduler-access"
    rationale = (
        "Only sim/transport.py touches scheduler delivery; everything "
        "else uses Transport.send/control/timer so faults, tracing and "
        "byte accounting can never be bypassed."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _package_module(module, ctx):
            return
        if ctx.layers.scheduler_ok(module.module or ""):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULER_METHODS
            ):
                yield module.finding(
                    self.id, node,
                    f"direct scheduler call `.{node.func.attr}(...)` outside "
                    "the transport — use Transport.timer/at/send so delivery "
                    "stays observable and fault-injectable",
                )


@rule
class DeniedEdgeRule(Rule):
    id = "ARCH203"
    name = "denied-import-edge"
    rationale = (
        "Some edges are forbidden even where the layer order would allow "
        "them; each [[deny]] entry records why, and optionally the facade "
        "to import from instead."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _package_module(module, ctx):
            return
        importer = module.module or ""
        for node, imported in module.import_nodes():
            if not imported:
                continue
            edge = ctx.layers.denied(importer, imported)
            if edge is None:
                continue
            hint = f" — import from `{edge.use}` instead" if edge.use else ""
            yield module.finding(
                self.id, node,
                f"forbidden import of `{imported}`: {edge.why}{hint}",
                fix=_facade_fix(node, imported, edge.use),
            )


def _facade_fix(node: ast.stmt, imported: str, use: str | None) -> FixEdit | None:
    """Rewrite ``from <denied> import ...`` to the sanctioned facade module."""
    if use is None or not isinstance(node, ast.ImportFrom) or node.level:
        return None
    if node.module != imported:
        return None
    # replace just the module path: `from X import a, b` -> `from USE import a, b`
    src_line = node.lineno
    col = node.col_offset + len("from ")
    return FixEdit(
        line=src_line,
        col=col,
        end_line=src_line,
        end_col=col + len(imported),
        replacement=use,
    )
