"""Protocol-flow rules (PRO5xx): the wire contract, checked statically.

The live backend's request/response protocol is stringly typed — RPC kinds
are literals at both the call site (``transport.rpc(addr, "notify", ...)``)
and the registration site (``transport.register_rpc("notify", fn)``) — and
the wire codec hand-maintains two mappings the type checker cannot see:
the ``_MESSAGE_CLASSES`` wire-constructor table and the per-type field
literals of the tagged-object encoders.  Each of these drifts silently;
these rules rebuild the message graph from the AST and verify it:

* **PRO501** — every ``@register_message`` dataclass in the scanned
  project appears in the codec's ``_MESSAGE_CLASSES`` table, and every
  table entry names a registered message.  A registered message without a
  wire constructor encodes on one peer and raises ``CodecError`` on the
  other; a stale table entry is an unreachable decoder arm hiding a
  missing registration.
* **PRO502** — every RPC kind *requested* in the net layer
  (``.rpc(addr, "kind", ...)``) has a ``register_rpc("kind", ...)``
  somewhere in the scanned project, and every one-way kind sent
  (``.send(addr, "kind", ...)``) has a ``register_handler``.  An
  unregistered request kind times out on every call — the dead peer and
  the missing handler are indistinguishable at runtime.
* **PRO503** — a tagged-object encoder literal
  (``{"__obj__": "Rect", ...}``) carries exactly the dataclass fields of
  the type it names.  A field added to the dataclass but not the encoder
  is silently dropped on the wire; a field removed from the dataclass but
  not the encoder crashes the encoder.

PRO501/PRO503 anchor on *structure* (the ``_MESSAGE_CLASSES`` assignment,
the ``__obj__`` tag) rather than hard-coded module names, so fixtures can
model the contract in miniature.  PRO502 is scoped to the ``net`` layer,
whose transport carries the kind as the second positional argument.  All
three are whole-project checks: they compare the scanned module against
every other scanned module, so they are meaningful when linting ``src/``
as a whole (the CI/pre-commit invocation), and under-approximate on
single-file runs.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.check.lint.engine import LintContext, ModuleInfo, Rule, rule
from repro.check.lint.findings import Finding

__all__ = ["MessageWireTableRule", "RpcHandlerParityRule", "CodecFieldDriftRule"]

#: the codec's message-name -> constructor mapping (by convention)
_WIRE_TABLE_NAME = "_MESSAGE_CLASSES"

#: the tagged-object marker key in codec value trees
_OBJ_TAG = "__obj__"

#: RPC request/registration call attribute names and the argument index
#: carrying the kind literal
_REQUEST_ATTRS = {"rpc": 1, "send": 1}
_REGISTER_ATTRS = {"register_rpc": 0, "register_handler": 0}
#: which registration satisfies which request
_REGISTER_FOR = {"rpc": "register_rpc", "send": "register_handler"}


def _in_repro(module: ModuleInfo) -> bool:
    return module.module is not None and (
        module.module == "repro" or module.module.startswith("repro.")
    )


def _decorated_with(cls: ast.ClassDef, module: ModuleInfo, name: str) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        resolved = module.resolve(target)
        if resolved is not None and resolved.rsplit(".", 1)[-1] == name:
            return True
        if isinstance(target, ast.Name) and target.id == name:
            return True
        if isinstance(target, ast.Attribute) and target.attr == name:
            return True
    return False


def _registered_messages(ctx: LintContext) -> dict[str, str]:
    """Registered message class name -> defining module, project-wide."""
    cached = getattr(ctx, "_registered_messages", None)
    if cached is None:
        cached = {}
        for mod_name, info in sorted(ctx.modules.items()):
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ClassDef) and _decorated_with(
                    node, info, "register_message"
                ):
                    cached.setdefault(node.name, mod_name)
        ctx._registered_messages = cached  # type: ignore[attr-defined]
    return cached


def _wire_table(module: ModuleInfo) -> tuple[ast.AST, dict[str, ast.expr]] | None:
    """The module's ``_MESSAGE_CLASSES = {...}`` literal, if it has one."""
    for stmt in module.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if (
            isinstance(target, ast.Name)
            and target.id == _WIRE_TABLE_NAME
            and isinstance(value, ast.Dict)
        ):
            keys: dict[str, ast.expr] = {}
            for k in value.keys:
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    keys[k.value] = k
            return stmt, keys
    return None


@rule
class MessageWireTableRule(Rule):
    id = "PRO501"
    name = "message-wire-table-parity"
    rationale = (
        "The codec's _MESSAGE_CLASSES table must mirror the "
        "register_message registry exactly: a registered message without "
        "a wire constructor encodes on one peer and raises CodecError on "
        "the other; a stale entry is dead decode code."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        table = _wire_table(module)
        if table is None:
            return
        stmt, keys = table
        registered = _registered_messages(ctx)
        if not registered:
            # partial (single-file) run with no registration site scanned:
            # under-approximate rather than flag every entry as stale
            return
        for name in sorted(registered):
            if name not in keys:
                yield module.finding(
                    self.id, stmt,
                    f"registered message `{name}` "
                    f"({registered[name]}) is missing from "
                    f"{_WIRE_TABLE_NAME} — it cannot be decoded off the wire",
                )
        for name in sorted(keys):
            if name not in registered:
                yield module.finding(
                    self.id, keys[name],
                    f"{_WIRE_TABLE_NAME} entry `{name}` does not name a "
                    "@register_message dataclass in the scanned project — "
                    "stale wire-constructor entry",
                )


def _kind_literal(call: ast.Call, index: int) -> str | None:
    if len(call.args) > index:
        arg = call.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _registered_kinds(ctx: LintContext) -> dict[str, set[str]]:
    """Project-wide kind registrations: register attr -> set of kinds."""
    cached = getattr(ctx, "_registered_kinds", None)
    if cached is None:
        cached = {attr: set() for attr in _REGISTER_ATTRS}
        for info in ctx.modules.values():
            for node in ast.walk(info.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _REGISTER_ATTRS
                ):
                    kind = _kind_literal(node, _REGISTER_ATTRS[node.func.attr])
                    if kind is not None:
                        cached[node.func.attr].add(kind)
        ctx._registered_kinds = cached  # type: ignore[attr-defined]
    return cached


def _request_sites(module: ModuleInfo) -> Iterator[tuple[ast.Call, str, str]]:
    """``(call, request_attr, kind)`` for literal-kind rpc/send calls."""
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REQUEST_ATTRS
        ):
            kind = _kind_literal(node, _REQUEST_ATTRS[node.func.attr])
            if kind is not None:
                yield node, node.func.attr, kind


@rule
class RpcHandlerParityRule(Rule):
    id = "PRO502"
    name = "rpc-handler-parity"
    rationale = (
        "An RPC kind requested without a register_rpc anywhere (or a "
        "one-way kind without a register_handler) times out on every "
        "call — at runtime the missing handler is indistinguishable from "
        "a dead peer, so the gap must be caught statically."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        if ctx.layers.layer_of(module.module or "") != "net":
            return
        registered = _registered_kinds(ctx)
        # only meaningful when some registration site was scanned at all:
        # a partial (single-file) run must not drown in absent-context noise
        if not any(registered.values()):
            return
        for call, attr, kind in _request_sites(module):
            want = _REGISTER_FOR[attr]
            if kind not in registered[want]:
                yield module.finding(
                    self.id, call,
                    f"`.{attr}(..., {kind!r}, ...)` has no "
                    f"`{want}({kind!r}, ...)` in the scanned project — "
                    "the request can only ever time out",
                )


def _dataclass_fields_of(cls: ast.ClassDef) -> set[str] | None:
    """Field names of an AST dataclass body (AnnAssign, minus ClassVar)."""
    fields: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            ann = ast.unparse(stmt.annotation)
            if "ClassVar" in ann:
                continue
            fields.add(stmt.target.id)
    return fields or None


def _find_class(ctx: LintContext, name: str) -> tuple[str, ast.ClassDef] | None:
    cached = getattr(ctx, "_class_index", None)
    if cached is None:
        cached = {}
        for mod_name, info in sorted(ctx.modules.items()):
            for node in ast.walk(info.tree):
                if isinstance(node, ast.ClassDef):
                    cached.setdefault(node.name, (mod_name, node))
        ctx._class_index = cached  # type: ignore[attr-defined]
    return cached.get(name)


@rule
class CodecFieldDriftRule(Rule):
    id = "PRO503"
    name = "codec-field-drift"
    rationale = (
        "A tagged-object encoder literal must carry exactly the dataclass "
        "fields of the type it names: a field added to the dataclass but "
        "not the encoder is silently dropped on the wire, one removed "
        "but not from the encoder crashes the encoder."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Dict):
                continue
            tagged = self._tagged_name(node)
            if tagged is None:
                continue
            found = _find_class(ctx, tagged)
            if found is None:
                continue  # type not scanned: cannot verify
            mod_name, cls = found
            fields = _dataclass_fields_of(cls)
            if fields is None:
                continue
            encoded = {
                k.value for k in node.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
                and k.value != _OBJ_TAG
            }
            if encoded == fields:
                continue
            missing = sorted(fields - encoded)
            extra = sorted(encoded - fields)
            parts = []
            if missing:
                parts.append(f"missing {missing}")
            if extra:
                parts.append(f"unknown {extra}")
            yield module.finding(
                self.id, node,
                f"encoder literal for `{tagged}` ({mod_name}) disagrees "
                f"with its dataclass fields: {', '.join(parts)}",
            )

    @staticmethod
    def _tagged_name(node: ast.Dict) -> str | None:
        for k, v in zip(node.keys, node.values):
            if (
                isinstance(k, ast.Constant)
                and k.value == _OBJ_TAG
                and isinstance(v, ast.Constant)
                and isinstance(v.value, str)
            ):
                return v.value
        return None
