"""Async-safety rules (ASY4xx), for the live backend (:mod:`repro.net`).

The sim's determinism rules assume a single-threaded event queue the
harness controls; the live asyncio backend trades that for a real event
loop, where the classic failure modes are *silent* — a blocked loop shows
up as tail latency, a never-awaited coroutine as a warning nobody reads,
a dropped task as an exception nobody sees.  These rules make them loud
at lint time:

* **ASY401** — blocking call inside ``async def``.  ``time.sleep``,
  synchronous ``socket``/``subprocess``/``urllib`` entry points and bare
  ``open()`` stall the entire event loop: every peer connection, timer
  and RPC in the process waits behind one call.
* **ASY402** — coroutine called but never awaited.  Calling an
  ``async def`` without ``await`` builds a coroutine object and throws it
  away; the body never runs.  Python only warns at garbage-collection
  time, on stderr, long after the protocol has silently lost a step.
* **ASY403** — ``asyncio.create_task`` / ``loop.create_task`` /
  ``asyncio.ensure_future`` result dropped on the floor.  The loop keeps
  only a weak reference to running tasks: an unreferenced task can be
  garbage-collected mid-flight, and an exception inside it is reported
  only at interpreter exit.  Keep the handle (and discard it explicitly
  on completion).
* **ASY404** — ``await`` while holding a plain (non-asyncio)
  ``threading`` lock.  The coroutine suspends with the lock held; any
  other coroutine on the same loop that tries to take it deadlocks the
  loop, because the holder can only resume on that very loop.  Use
  ``asyncio.Lock`` with ``async with``.

Scope tracking is syntactic: a call is "in async context" when its
innermost enclosing function is an ``async def``.  A nested synchronous
``def`` resets the context — such callbacks often run off-loop (thread
pools, ``call_soon`` from sync code), and flagging them would punish the
escape hatches.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.check.lint.engine import LintContext, ModuleInfo, Rule, rule
from repro.check.lint.findings import Finding

__all__ = [
    "BlockingCallRule",
    "UnawaitedCoroutineRule",
    "DroppedTaskRule",
    "AwaitUnderSyncLockRule",
]

#: dotted call targets that block the calling thread — and with it the
#: entire event loop when called from a coroutine
_BLOCKING = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.getoutput",
    "subprocess.getstatusoutput",
    "os.system",
    "os.wait",
    "os.waitpid",
    "socket.create_connection",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "socket.gethostbyaddr",
    "urllib.request.urlopen",
    "open",
    "input",
}

#: task-spawning entry points whose return value is the only strong
#: reference keeping the task alive
_TASK_SPAWNERS = {"asyncio.create_task", "asyncio.ensure_future"}
_TASK_SPAWN_ATTRS = {"create_task", "ensure_future"}

#: threading synchronisation constructors whose ``with`` blocks must not
#: contain an ``await``
_SYNC_LOCKS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}


def _in_repro(module: ModuleInfo) -> bool:
    return module.module is not None and (
        module.module == "repro" or module.module.startswith("repro.")
    )


def _async_function_bodies(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    """Every ``async def`` in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _walk_same_async_scope(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function defs.

    Nested ``async def`` bodies are visited when the outer iteration over
    :func:`_async_function_bodies` reaches them; nested sync ``def`` bodies
    are deliberately skipped (they run off this coroutine's await chain).
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@rule
class BlockingCallRule(Rule):
    id = "ASY401"
    name = "blocking-call-in-async"
    rationale = (
        "A blocking call inside `async def` stalls the whole event loop — "
        "every connection, timer and RPC in the process waits behind it; "
        "use the asyncio equivalent (asyncio.sleep, open_connection, "
        "create_subprocess_exec, to_thread)."
    )

    #: suggested replacements, keyed by blocking target
    _HINTS = {
        "time.sleep": "await asyncio.sleep(...)",
        "subprocess.run": "await asyncio.create_subprocess_exec(...)",
        "socket.create_connection": "await asyncio.open_connection(...)",
        "urllib.request.urlopen": "asyncio.to_thread(...)",
        "open": "asyncio.to_thread(...) (or accept the stall knowingly "
                "via a sync helper)",
    }

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for fn in _async_function_bodies(module.tree):
            for node in _walk_same_async_scope(fn):
                if not isinstance(node, ast.Call):
                    continue
                target = module.resolve(node.func)
                if target in _BLOCKING:
                    hint = self._HINTS.get(target, "an asyncio equivalent "
                                           "or asyncio.to_thread(...)")
                    yield module.finding(
                        self.id, node,
                        f"blocking call `{target}(...)` inside `async def "
                        f"{fn.name}` stalls the event loop — use {hint}",
                    )


def _module_async_defs(info: ModuleInfo) -> set[str]:
    """Names of module-level ``async def`` functions."""
    return {
        stmt.name for stmt in info.tree.body
        if isinstance(stmt, ast.AsyncFunctionDef)
    }


def _project_async_functions(ctx: LintContext) -> set[str]:
    """Dotted names of module-level async functions across scanned modules."""
    cached = getattr(ctx, "_async_fn_index", None)
    if cached is None:
        cached = {
            f"{name}.{fname}"
            for name, info in ctx.modules.items()
            for fname in _module_async_defs(info)
        }
        ctx._async_fn_index = cached  # type: ignore[attr-defined]
    return cached


def _class_async_methods(cls: ast.ClassDef) -> set[str]:
    return {
        stmt.name for stmt in cls.body
        if isinstance(stmt, ast.AsyncFunctionDef)
    }


@rule
class UnawaitedCoroutineRule(Rule):
    id = "ASY402"
    name = "unawaited-coroutine"
    rationale = (
        "Calling an `async def` without `await` builds a coroutine object "
        "and discards it — the body never runs, and Python only mentions "
        "it in a GC-time RuntimeWarning long after the protocol lost the "
        "step."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        project_async = _project_async_functions(ctx)
        local_async = _module_async_defs(module)
        for cls, fn, stmt in _statements_with_class(module.tree):
            if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
                continue
            call = stmt.value
            name = self._async_callee(call, module, cls, local_async, project_async)
            if name is None:
                continue
            yield module.finding(
                self.id, call,
                f"coroutine `{name}(...)` is never awaited — its body will "
                "not run; `await` it or wrap it in a kept asyncio task",
            )

    @staticmethod
    def _async_callee(
        call: ast.Call,
        module: ModuleInfo,
        cls: ast.ClassDef | None,
        local_async: set[str],
        project_async: set[str],
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in local_async:
            return func.id
        if (
            cls is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in _class_async_methods(cls)
        ):
            return f"self.{func.attr}"
        resolved = module.resolve(func)
        if resolved is not None and resolved in project_async:
            return resolved
        return None


def _statements_with_class(
    tree: ast.Module,
) -> Iterator[tuple[ast.ClassDef | None, ast.AST | None, ast.stmt]]:
    """Every statement with its enclosing class and function (or None)."""

    def visit(node: ast.AST, cls: ast.ClassDef | None,
              fn: ast.AST | None) -> Iterator[tuple[ast.ClassDef | None, ast.AST | None, ast.stmt]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                yield cls, fn, child
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child, fn)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(child, cls, child)
            else:
                yield from visit(child, cls, fn)

    yield from visit(tree, None, None)


@rule
class DroppedTaskRule(Rule):
    id = "ASY403"
    name = "dropped-task-handle"
    rationale = (
        "The event loop keeps only a weak reference to running tasks: a "
        "`create_task` result that is not stored can be garbage-collected "
        "mid-flight, and its exception surfaces only at interpreter exit. "
        "Keep the handle."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            if self._spawns_task(call, module):
                yield module.finding(
                    self.id, call,
                    "task handle dropped — store the `create_task(...)` "
                    "result (and discard it on completion) so the task "
                    "cannot be collected mid-flight and its exception is "
                    "observed",
                )

    @staticmethod
    def _spawns_task(call: ast.Call, module: ModuleInfo) -> bool:
        resolved = module.resolve(call.func)
        if resolved in _TASK_SPAWNERS:
            return True
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _TASK_SPAWN_ATTRS
        )


@rule
class AwaitUnderSyncLockRule(Rule):
    id = "ASY404"
    name = "await-under-sync-lock"
    rationale = (
        "`await` inside a plain `with threading.Lock()` suspends the "
        "coroutine with the lock held; any coroutine on the same loop "
        "that wants the lock then deadlocks the loop. Use asyncio.Lock "
        "with `async with`."
    )

    def check(self, module: ModuleInfo, ctx: LintContext) -> Iterable[Finding]:
        if not _in_repro(module):
            return
        lock_names = _sync_lock_bindings(module)
        for fn in _async_function_bodies(module.tree):
            for node in _walk_same_async_scope(fn):
                if not isinstance(node, ast.With):
                    continue
                if not any(
                    self._is_sync_lock(item.context_expr, module, lock_names)
                    for item in node.items
                ):
                    continue
                if self._contains_await(node):
                    yield module.finding(
                        self.id, node,
                        "`await` while holding a threading lock — the loop "
                        "deadlocks if another coroutine wants it; use "
                        "asyncio.Lock with `async with`",
                    )

    @staticmethod
    def _is_sync_lock(expr: ast.expr, module: ModuleInfo,
                      lock_names: tuple[set[str], set[str]]) -> bool:
        names, attrs = lock_names
        if isinstance(expr, ast.Call):
            return module.resolve(expr.func) in _SYNC_LOCKS
        if isinstance(expr, ast.Name):
            return expr.id in names
        if isinstance(expr, ast.Attribute):
            return expr.attr in attrs
        return False

    @staticmethod
    def _contains_await(with_node: ast.With) -> bool:
        stack: list[ast.AST] = list(with_node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Await):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False


def _sync_lock_bindings(module: ModuleInfo) -> tuple[set[str], set[str]]:
    """Names and attributes bound to a ``threading`` lock in this module.

    ``names`` covers plain bindings (``_LOCK = threading.Lock()``, module
    or function scope); ``attrs`` covers attribute bindings
    (``self._lock = threading.Lock()``), matched by attribute name.
    """
    names: set[str] = set()
    attrs: set[str] = set()
    for node in ast.walk(module.tree):
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None or not isinstance(value, ast.Call):
            continue
        if module.resolve(value.func) not in _SYNC_LOCKS:
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
            elif isinstance(t, ast.Attribute):
                attrs.add(t.attr)
    return names, attrs
