"""Runtime invariant checking: ring, ownership, conservation, partitions.

The distributed index makes crisp structural promises — the Chord ring is a
consistent cycle, every key has exactly one owner (plus replicas), every
branch a query opens is eventually settled, and QuerySplit/SurrogateRefine
partition a query *exactly* (no gap, no overlap).  A wrong answer under
churn would otherwise surface, if at all, as a silent recall dip in a
benchmark; these checkers turn each promise into a mechanical assertion the
whole stack can run under.

Two kinds of checker:

* :class:`InvariantChecker` — *global-state* assertions evaluated on demand
  or periodically on the simulation clock (:meth:`InvariantChecker.attach`):
  ring consistency against the oracle membership, exactly-one-owner shard
  placement for every index entry, branch conservation across lifecycle
  engines, and span-tree reconciliation against per-query stats.
* :class:`PartitionChecker` — an *online* observer wired into
  :class:`repro.core.routing.QueryProtocol` (the ``checker=`` parameter):
  verifies every QuerySplit tiles the parent hyperrectangle and every
  SurrogateRefine decomposition tiles the claimed key interval, as the
  algorithms execute.

Both raise :class:`InvariantViolation` in strict mode (the default) or
collect violations for inspection with ``strict=False``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.util.bits import same_prefix, set_bit_at

__all__ = [
    "InvariantViolation",
    "PartitionChecker",
    "InvariantChecker",
    "check_live_cluster",
]


class InvariantViolation(AssertionError):
    """A checked invariant does not hold.

    ``name`` identifies the invariant (e.g. ``"ring.successor"``);
    ``details`` is a human-readable description of the violation.
    """

    def __init__(self, name: str, details: str) -> None:
        super().__init__(f"invariant {name!r} violated: {details}")
        self.name = name
        self.details = details


class _Reporter:
    """Shared strict-or-collect violation plumbing.

    ``flight`` optionally attaches a :class:`repro.obs.flight.FlightRecorder`:
    every violation is recorded into its ring buffer and — strict or not —
    triggers a bundle dump (reason ``invariant-violation``), so the recent
    event tail is on disk before the exception unwinds anything.
    """

    def __init__(self, strict: bool = True, flight: Any = None) -> None:
        self.strict = strict
        self.flight = flight
        self.violations: list[InvariantViolation] = []
        #: passed checks per invariant name (proof the checker actually ran)
        self.checks: dict[str, int] = {}

    def _passed(self, name: str) -> None:
        self.checks[name] = self.checks.get(name, 0) + 1

    def _fail(self, name: str, details: str) -> None:
        violation = InvariantViolation(name, details)
        if self.flight is not None:
            self.flight.record("invariant-violation", name=name, details=details)
            self.flight.dump(reason="invariant-violation")
        if self.strict:
            raise violation
        self.violations.append(violation)

    @property
    def ok(self) -> bool:
        return not self.violations


def check_live_cluster(
    statuses: list[dict[str, Any]],
    m: int,
    strict: bool = True,
    expected_entries: int | None = None,
    flight: Any = None,
) -> _Reporter:
    """Ring + conservation checks over live-node ``status`` RPC replies.

    The live backend (:mod:`repro.net`) has no shared-memory oracle, so the
    structural promises are asserted over the data every node reports about
    itself: sorted by id, each node's first successor and its predecessor
    must be its ring neighbours, the ownership intervals must tile the
    ``2**m`` identifier space exactly, and (when ``expected_entries`` is
    given) the shards together must hold every inserted entry exactly once.

    Same strict-or-collect semantics as the simulator checkers; returns the
    reporter so callers can inspect ``checks`` / ``violations``.
    """
    rep = _Reporter(strict, flight=flight)
    if not statuses:
        rep._fail("ring.empty", "no live members")
        return rep
    by_id = {int(s["id"]): s for s in statuses}
    if len(by_id) != len(statuses):
        rep._fail("ring.membership", "duplicate node ids in status set")
        return rep
    ids = sorted(by_id)
    n = len(ids)
    for pos, nid in enumerate(ids):
        s = by_id[nid]
        if n == 1:
            break
        succ = s["successors"][0] if s["successors"] else None
        expected_succ = ids[(pos + 1) % n]
        if succ is None or int(succ["id"]) != expected_succ:
            got = "None" if succ is None else hex(int(succ["id"]))
            rep._fail(
                "ring.successor",
                f"node {nid:#x}: successor {got} != oracle {expected_succ:#x}",
            )
            return rep
        pred = s["predecessor"]
        expected_pred = ids[(pos - 1) % n]
        if pred is None or int(pred["id"]) != expected_pred:
            got = "None" if pred is None else hex(int(pred["id"]))
            rep._fail(
                "ring.predecessor",
                f"node {nid:#x}: predecessor {got} != oracle {expected_pred:#x}",
            )
            return rep
    if n > 1:
        total = sum((b - a) % (1 << m) for a, b in zip(ids, ids[1:] + ids[:1]))
        if total != (1 << m):
            rep._fail(
                "ring.intervals",
                f"ownership intervals cover {total} keys, expected {1 << m}",
            )
            return rep
    rep._passed("ring")
    if expected_entries is not None:
        held = sum(int(s["entries"]) for s in statuses)
        if held != expected_entries:
            rep._fail(
                "ownership.conservation",
                f"shards hold {held} entries, {expected_entries} were inserted",
            )
            return rep
        rep._passed("ownership")
    return rep


class PartitionChecker(_Reporter):
    """Online query-partition exactness checks (Algorithms 4 and 5).

    Wire into a protocol via ``QueryProtocol(..., checker=checker)`` (or the
    ``checker=`` kwarg of ``IndexPlatform.query``/``protocol``).  Two hooks:

    * :meth:`on_split` — a QuerySplit produced two subqueries; they must
      tile the parent rectangle exactly along the split dimension and carry
      the two complementary prefix extensions.
    * :meth:`on_refine` — a surrogate decomposed its claimed key range; the
      locally-answered interval plus the forwarded sibling-cuboid intervals
      must tile the claimed interval with no gap and no overlap.
    """

    def __init__(self, index: Any, strict: bool = True, flight: Any = None) -> None:
        super().__init__(strict, flight=flight)
        self.index = index

    # -- Algorithm 4: the two halves tile the parent rectangle -----------------

    def on_split(self, q: Any, subs: Any) -> None:
        m = self.index.m
        k = self.index.bounds.k
        p = q.prefix_len + 1
        j = (p - 1) % k
        if len(subs) != 2:
            self._fail("split.arity", f"qid {q.qid}: {len(subs)} subqueries")
            return
        if any(sq.prefix_len != p for sq in subs):
            self._fail(
                "split.prefix_len",
                f"qid {q.qid}: prefix lengths {[sq.prefix_len for sq in subs]} != {p}",
            )
            return
        # identify halves by the new prefix bit (bit p set => higher half)
        hi = next((sq for sq in subs if sq.prefix_key == set_bit_at(q.prefix_key, p, m)), None)
        lo = next((sq for sq in subs if sq.prefix_key == q.prefix_key), None)
        if hi is None or lo is None or hi is lo:
            self._fail(
                "split.prefix_key",
                f"qid {q.qid}: keys {[hex(sq.prefix_key) for sq in subs]} are not the "
                f"complementary extensions of {q.prefix_key:#x} at bit {p}",
            )
            return
        # off-dimension extents must be untouched; dim j must share one plane
        for sq, tag in ((lo, "low"), (hi, "high")):
            off = np.arange(k) != j
            if not (
                np.array_equal(sq.rect.lows[off], q.rect.lows[off])
                and np.array_equal(sq.rect.highs[off], q.rect.highs[off])
            ):
                self._fail(
                    "split.off_dims",
                    f"qid {q.qid}: {tag} half altered a non-split dimension",
                )
                return
        gap_free = (
            lo.rect.lows[j] == q.rect.lows[j]
            and hi.rect.highs[j] == q.rect.highs[j]
            and lo.rect.highs[j] == hi.rect.lows[j]
        )
        if not gap_free:
            self._fail(
                "split.tiling",
                f"qid {q.qid}: dim {j} pieces "
                f"[{lo.rect.lows[j]}, {lo.rect.highs[j]}] + "
                f"[{hi.rect.lows[j]}, {hi.rect.highs[j]}] do not tile "
                f"[{q.rect.lows[j]}, {q.rect.highs[j]}]",
            )
            return
        if not (lo.rect.highs[j] <= hi.rect.lows[j] or lo.rect.highs[j] == hi.rect.lows[j]):
            self._fail("split.overlap", f"qid {q.qid}: halves overlap beyond the plane")
            return
        self._passed("split")

    # -- Algorithm 5: the key intervals tile the claimed range -----------------

    def on_refine(
        self, q: Any, eff: int, local_lo: int, local_hi: int, siblings: Any
    ) -> None:
        m = self.index.m
        span = 1 << (m - q.prefix_len)
        key_lo = q.prefix_key
        key_hi = key_lo + span - 1
        intervals = [(local_lo, local_hi, "local")]
        for prefix, plen in siblings:
            intervals.append((prefix, prefix + (1 << (m - plen)) - 1, f"sib/{plen}"))
            if not same_prefix(prefix, q.prefix_key, q.prefix_len, m):
                self._fail(
                    "refine.scope",
                    f"qid {q.qid}: sibling {prefix:#x}/{plen} escapes the claimed "
                    f"cuboid {key_lo:#x}..{key_hi:#x}",
                )
                return
        intervals.sort()
        if intervals[0][0] != key_lo:
            self._fail(
                "refine.gap",
                f"qid {q.qid}: coverage starts at {intervals[0][0]:#x}, "
                f"claimed range starts at {key_lo:#x}",
            )
            return
        for (alo, ahi, atag), (blo, bhi, btag) in zip(intervals, intervals[1:]):
            if blo != ahi + 1:
                kind = "refine.overlap" if blo <= ahi else "refine.gap"
                self._fail(
                    kind,
                    f"qid {q.qid}: {atag} ends at {ahi:#x} but {btag} starts at {blo:#x}",
                )
                return
        if intervals[-1][1] != key_hi:
            self._fail(
                "refine.gap",
                f"qid {q.qid}: coverage ends at {intervals[-1][1]:#x}, "
                f"claimed range ends at {key_hi:#x}",
            )
            return
        if not (key_lo <= (eff if same_prefix(q.prefix_key, eff, q.prefix_len, m) else key_hi) <= key_hi):
            self._fail("refine.owner", f"qid {q.qid}: effective id {eff:#x} outside claim")
            return
        self._passed("refine")


class InvariantChecker(_Reporter):
    """Global-state assertions over a platform (or bare ring/engine).

    Parameters
    ----------
    platform:
        Optional :class:`repro.core.platform.IndexPlatform`; supplies the
        ring, the hosted indexes (ownership checks) and the observability
        bundle (span reconciliation).
    ring:
        A :class:`repro.dht.ring.ChordRing` when no platform is given.
    strict:
        Raise :class:`InvariantViolation` on the first failure (default);
        ``False`` collects into :attr:`violations` instead.

    The ring checks assert the *stabilised steady state* (the tables
    structural rebuilds produce and the maintenance protocol converges to);
    run them at operation boundaries, not mid-convergence.  Ownership checks
    likewise assume entry placement is current (``distribute()`` ran after
    the last membership change).
    """

    def __init__(
        self,
        platform: Any = None,
        ring: Any = None,
        strict: bool = True,
        flight: Any = None,
    ) -> None:
        super().__init__(strict, flight=flight)
        self.platform = platform
        self.ring = ring if ring is not None else (platform.ring if platform else None)
        #: lifecycle engines whose branch conservation is checked
        self.engines: list[Any] = []
        self._hook_installed = False

    def track_engine(self, engine: Any) -> None:
        if engine is not None and engine not in self.engines:
            self.engines.append(engine)

    # -- Chord ring consistency ------------------------------------------------

    def check_ring(self) -> None:
        """Successor/predecessor agreement with the oracle membership, and
        finger reachability versus live members."""
        ring = self.ring
        nodes = ring.nodes()
        n = len(nodes)
        if n == 0:
            self._fail("ring.empty", "no live members")
            return
        for pos, node in enumerate(nodes):
            if not node.alive:
                self._fail("ring.membership", f"dead node {node.id:#x} still a member")
                return
            if n == 1:
                break
            expected_succ = nodes[(pos + 1) % n]
            succ = next((s for s in node.successors if s.alive), None)
            if succ is not expected_succ:
                got = "None" if succ is None else hex(succ.id)
                self._fail(
                    "ring.successor",
                    f"node {node.id:#x}: first live successor "
                    f"{got} != oracle {expected_succ.id:#x}",
                )
                return
            pred = node.predecessor
            expected_pred = nodes[(pos - 1) % n]
            if pred is None or not pred.alive or pred is not expected_pred:
                self._fail(
                    "ring.predecessor",
                    f"node {node.id:#x}: predecessor "
                    f"{'None' if pred is None else hex(pred.id)} != oracle {expected_pred.id:#x}",
                )
                return
            for i, f in enumerate(node.fingers):
                if ring.nodes_by_id.get(f.id) is not f:
                    self._fail(
                        "ring.finger_live",
                        f"node {node.id:#x} finger {i} -> {f.id:#x} is not a live member",
                    )
                    return
        # ownership intervals partition the identifier space exactly once
        if n > 1:
            ids = sorted(nd.id for nd in nodes)
            total = sum((b - a) % (1 << ring.m) for a, b in zip(ids, ids[1:] + ids[:1]))
            if total != (1 << ring.m):
                self._fail(
                    "ring.intervals",
                    f"ownership intervals cover {total} keys, expected {1 << ring.m}",
                )
                return
        self._passed("ring")

    # -- exactly-one-owner coverage ---------------------------------------------

    def check_ownership(self, index: Any = None) -> None:
        """Every entry of every index is stored exactly on its owner plus the
        configured replica successors — nowhere else, never twice."""
        indexes = [index] if index is not None else list(
            self.platform.indexes.values() if self.platform else []
        )
        ring = self.ring
        nodes = ring.nodes()
        n = len(nodes)
        for idx in indexes:
            if idx._keys is None or n == 0:
                continue
            owners = ring.owners_of_keys(idx.rotated_keys())
            copies = min(idx.replication, n)
            expected: dict[int, list[tuple[int, int]]] = {node.id: [] for node in nodes}
            for e, owner_pos in enumerate(owners):
                for c in range(copies):
                    holder = nodes[(int(owner_pos) + c) % n]
                    expected[holder.id].append(
                        (int(idx._keys[e]), int(idx._object_ids[e]))
                    )
            for node in nodes:
                shard = idx.shards.get(node)
                actual = (
                    sorted(zip(shard.keys.tolist(), shard.object_ids.tolist()))
                    if shard is not None and len(shard)
                    else []
                )
                want = sorted(expected[node.id])
                if actual != want:
                    missing = set(map(tuple, want)) - set(map(tuple, actual))
                    extra = set(map(tuple, actual)) - set(map(tuple, want))
                    self._fail(
                        "ownership.placement",
                        f"index {idx.name!r} node {node.id:#x}: "
                        f"{len(missing)} entries missing {sorted(missing)[:3]}, "
                        f"{len(extra)} foreign {sorted(extra)[:3]}",
                    )
                    return
            self._passed("ownership")

    # -- query branch conservation ------------------------------------------------

    def check_conservation(self, engine: Any = None) -> None:
        """``branches_opened == settled + discarded + in flight`` per engine."""
        engines = [engine] if engine is not None else self.engines
        for eng in engines:
            c = eng.counters
            in_flight = eng.branches_in_flight()
            if c.branches_opened != c.branches_settled + c.branches_discarded + in_flight:
                self._fail(
                    "lifecycle.conservation",
                    f"opened {c.branches_opened} != settled {c.branches_settled} "
                    f"+ discarded {c.branches_discarded} + in-flight {in_flight}",
                )
                return
            self._passed("conservation")

    # -- span-tree reconciliation ---------------------------------------------------

    def check_spans(self, stats: Any, qid: int | None = None) -> None:
        """Reconcile recorded spans against per-query stats counters.

        Needs the platform's observability with a memory span sink.  Checks
        terminal (or untracked-but-finished) queries only.
        """
        obs = self.platform.obs if self.platform is not None else None
        memory = obs.span_memory if obs is not None else None
        if memory is None:
            return
        from repro.obs.spans import reconcile_with_stats

        qids = [qid] if qid is not None else sorted(stats.queries)
        for q in qids:
            qs = stats.queries.get(q)
            if qs is None or (qs.state not in ("complete", "timed_out", "untracked")):
                continue
            problems = reconcile_with_stats(memory.for_query(q), qs)
            if problems:
                self._fail("spans.reconcile", f"qid {q}: " + "; ".join(problems))
                return
            self._passed("spans")

    # -- orchestration -----------------------------------------------------------------

    def check_all(self, stats: Any = None) -> InvariantChecker:
        self.check_ring()
        self.check_ownership()
        self.check_conservation()
        if stats is not None:
            self.check_spans(stats)
        return self

    def attach(self, sim: Any, interval: float = 1.0, stats: Any = None) -> None:
        """Run :meth:`check_all` every ``interval`` sim-seconds while events
        remain queued (``sim.every`` re-arms only on a truthy return, so the
        checker never keeps an otherwise-finished simulation alive)."""

        def tick() -> bool:
            self.check_all(stats)
            return sim.pending() > 0

        sim.every(interval, tick)
        self._hook_installed = True

    def summary(self) -> dict[str, int]:
        out = dict(self.checks)
        out["violations"] = len(self.violations)
        return out
