"""Simulation correctness harness: invariants, replay, differential fuzzing.

Three legs, built on the hooks the rest of the stack exposes:

* :mod:`repro.check.invariants` — runtime assertions: Chord ring
  consistency, exactly-one-owner shard placement, query branch
  conservation, span/stats reconciliation, and online query-partition
  exactness (QuerySplit tiling, SurrogateRefine key-interval tiling);
* :mod:`repro.check.replay` — scenarios, run fingerprints and JSON replay
  logs; ``repro replay <log>`` re-executes a recorded run and proves it
  bit-identical;
* :mod:`repro.check.fuzz` — Hypothesis state machines driving random op
  sequences in lockstep with the :mod:`repro.check.oracle` linear-scan
  reference; :mod:`repro.check.pytest_plugin` dumps shrunken failing
  scenarios as replay bundles.

See ``docs/testing.md`` for the invariant catalogue and workflows.
"""

from repro.check.invariants import (
    InvariantChecker,
    InvariantViolation,
    PartitionChecker,
)
from repro.check.oracle import LinearScanOracle
from repro.check.replay import (
    RunFingerprint,
    RunReport,
    Scenario,
    World,
    apply_op,
    attach_scenario,
    build_world,
    clear_scenario,
    current_scenario,
    execute_scenario,
    random_scenario,
    record_run,
    replay_file,
    write_bundle,
)

__all__ = [
    "InvariantChecker",
    "InvariantViolation",
    "PartitionChecker",
    "LinearScanOracle",
    "Scenario",
    "RunFingerprint",
    "RunReport",
    "World",
    "build_world",
    "apply_op",
    "execute_scenario",
    "random_scenario",
    "record_run",
    "replay_file",
    "write_bundle",
    "attach_scenario",
    "current_scenario",
    "clear_scenario",
]
