"""Evaluation harness: ground truth, metrics, experiment runner and reports.

Every table and figure of the paper's §4 has a named configuration in
:mod:`repro.eval.experiments` and a benchmark under ``benchmarks/`` that
regenerates it.
"""

from repro.eval.demo import run_demo
from repro.eval.expansion import expand_query
from repro.eval.validate import CheckResult, self_check
from repro.eval.experiments import (
    SYNTHETIC_SCHEMES,
    TREC_SCHEMES,
    figure2_config,
    figure3_config,
    figure4_config,
    figure5_config,
    figure6_config,
)
from repro.eval.ground_truth import batch_exact_top_k, exact_range, exact_top_k
from repro.eval.metrics import (
    gini_coefficient,
    load_summary,
    merge_top_k,
    recall_at_k,
    workload_recall,
)
from repro.eval.report import format_dict, format_load_distribution, format_sweep, format_table
from repro.eval.runner import (
    ReplicatedResult,
    run_replicated,
    DatasetBundle,
    ExperimentConfig,
    ExperimentResult,
    Scheme,
    SchemeResult,
    build_bundle,
    build_synthetic_bundle,
    build_trec_bundle,
    run_experiment,
    run_scheme,
)

__all__ = [
    "exact_top_k",
    "exact_range",
    "batch_exact_top_k",
    "merge_top_k",
    "recall_at_k",
    "workload_recall",
    "gini_coefficient",
    "load_summary",
    "Scheme",
    "ExperimentConfig",
    "ExperimentResult",
    "SchemeResult",
    "DatasetBundle",
    "build_bundle",
    "build_synthetic_bundle",
    "build_trec_bundle",
    "run_experiment",
    "run_replicated",
    "ReplicatedResult",
    "run_scheme",
    "figure2_config",
    "figure3_config",
    "figure4_config",
    "figure5_config",
    "figure6_config",
    "SYNTHETIC_SCHEMES",
    "TREC_SCHEMES",
    "format_table",
    "format_sweep",
    "format_load_distribution",
    "format_dict",
    "expand_query",
    "self_check",
    "CheckResult",
    "run_demo",
]
