"""Result-quality and load metrics (paper §4.1).

Recall: for each query, the 10 nearest objects found by exact search over
the whole dataset form the theoretical result ``X``; the system's merged
top-10 is ``Y``; ``recall = |X ∩ Y| / |X|``.  Index nodes each return their
10 nearest local results and the querier merges them, exactly as the paper
describes.
"""

from __future__ import annotations

import numpy as np

# load-vector statistics live with the per-node gauges in repro.obs.load
# (obs is below eval in layers.toml); re-exported here for report code
from repro.obs.load import gini_coefficient, load_summary

__all__ = [
    "merge_top_k",
    "recall_at_k",
    "workload_recall",
    "gini_coefficient",
    "load_summary",
]


def merge_top_k(entries, k: int = 10) -> np.ndarray:
    """Merge per-node result entries into the querier's global top-k.

    Deduplicates by object id (keeping the best distance) and returns object
    ids sorted by ascending distance, at most ``k``.
    """
    best: dict[int, float] = {}
    for e in entries:
        if e.object_id not in best or e.distance < best[e.object_id]:
            best[e.object_id] = e.distance
    ranked = sorted(best.items(), key=lambda kv: (kv[1], kv[0]))
    return np.asarray([oid for oid, _ in ranked[:k]], dtype=np.int64)


def recall_at_k(true_ids: np.ndarray, retrieved_ids: np.ndarray) -> float:
    """``|X ∩ Y| / |X|`` — the paper's recall for one query."""
    truth = set(int(i) for i in true_ids)
    if not truth:
        return 1.0
    got = set(int(i) for i in retrieved_ids)
    return len(truth & got) / len(truth)


def workload_recall(stats, ground_truth: list[np.ndarray], k: int = 10) -> tuple[float, np.ndarray]:
    """Mean recall over a workload (and the per-query vector).

    ``stats`` is the :class:`repro.sim.stats.StatsCollector` of the run;
    query ``qid`` must equal the position in ``ground_truth``.
    """
    per_query = np.zeros(len(ground_truth))
    for qid, truth in enumerate(ground_truth):
        qs = stats.queries.get(qid)
        retrieved = merge_top_k(qs.entries, k) if qs is not None else np.empty(0, np.int64)
        per_query[qid] = recall_at_k(truth, retrieved)
    return float(per_query.mean()) if len(per_query) else 0.0, per_query


