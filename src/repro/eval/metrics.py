"""Result-quality and load metrics (paper §4.1).

Recall: for each query, the 10 nearest objects found by exact search over
the whole dataset form the theoretical result ``X``; the system's merged
top-10 is ``Y``; ``recall = |X ∩ Y| / |X|``.  Index nodes each return their
10 nearest local results and the querier merges them, exactly as the paper
describes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "merge_top_k",
    "recall_at_k",
    "workload_recall",
    "gini_coefficient",
    "load_summary",
]


def merge_top_k(entries, k: int = 10) -> np.ndarray:
    """Merge per-node result entries into the querier's global top-k.

    Deduplicates by object id (keeping the best distance) and returns object
    ids sorted by ascending distance, at most ``k``.
    """
    best: "dict[int, float]" = {}
    for e in entries:
        if e.object_id not in best or e.distance < best[e.object_id]:
            best[e.object_id] = e.distance
    ranked = sorted(best.items(), key=lambda kv: (kv[1], kv[0]))
    return np.asarray([oid for oid, _ in ranked[:k]], dtype=np.int64)


def recall_at_k(true_ids: np.ndarray, retrieved_ids: np.ndarray) -> float:
    """``|X ∩ Y| / |X|`` — the paper's recall for one query."""
    truth = set(int(i) for i in true_ids)
    if not truth:
        return 1.0
    got = set(int(i) for i in retrieved_ids)
    return len(truth & got) / len(truth)


def workload_recall(stats, ground_truth: "list[np.ndarray]", k: int = 10) -> "tuple[float, np.ndarray]":
    """Mean recall over a workload (and the per-query vector).

    ``stats`` is the :class:`repro.sim.stats.StatsCollector` of the run;
    query ``qid`` must equal the position in ``ground_truth``.
    """
    per_query = np.zeros(len(ground_truth))
    for qid, truth in enumerate(ground_truth):
        qs = stats.queries.get(qid)
        retrieved = merge_top_k(qs.entries, k) if qs is not None else np.empty(0, np.int64)
        per_query[qid] = recall_at_k(truth, retrieved)
    return float(per_query.mean()) if len(per_query) else 0.0, per_query


def gini_coefficient(loads: np.ndarray) -> float:
    """Gini coefficient of the load distribution (0 = even, →1 = concentrated)."""
    x = np.sort(np.asarray(loads, dtype=np.float64))
    n = len(x)
    total = x.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(x)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def load_summary(loads: np.ndarray) -> "dict[str, float]":
    """Summary statistics of a per-node load vector (Figures 4 & 6)."""
    loads = np.asarray(loads, dtype=np.float64)
    if len(loads) == 0:
        return {"max": 0.0, "mean": 0.0, "nonzero": 0.0, "gini": 0.0, "max_over_mean": 0.0}
    mean = float(loads.mean())
    return {
        "max": float(loads.max()),
        "mean": mean,
        "nonzero": float(np.count_nonzero(loads)),
        "gini": gini_coefficient(loads),
        "max_over_mean": float(loads.max() / mean) if mean > 0 else 0.0,
    }
