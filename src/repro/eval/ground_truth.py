"""Exact (centralised) similarity search for recall ground truth.

The paper's recall metric (§4.1): "the k-nearest data objects obtained by
searching the whole dataset are considered as the theoretical results", with
``k = 10``.  Distance evaluation is vectorised and chunked so 2000 queries
against 1e5 100-d objects stay within memory.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.platform import take
from repro.metric.base import Metric

__all__ = ["exact_top_k", "exact_range", "batch_exact_top_k"]


def exact_top_k(dataset: Any, metric: Metric, query_obj: Any, k: int = 10) -> np.ndarray:
    """Indices of the ``k`` nearest dataset objects to ``query_obj``."""
    d = metric.one_to_many(query_obj, dataset)
    k = min(k, len(d))
    idx = np.argpartition(d, k - 1)[:k]
    return idx[np.argsort(d[idx], kind="stable")]


def exact_range(dataset: Any, metric: Metric, query_obj: Any, radius: float) -> np.ndarray:
    """Indices of all dataset objects within ``radius`` of ``query_obj``."""
    d = metric.one_to_many(query_obj, dataset)
    return np.flatnonzero(d <= radius)


def batch_exact_top_k(
    dataset: Any,
    metric: Metric,
    queries: Any,
    k: int = 10,
    radius: float | None = None,
    chunk: int = 256,
) -> list[np.ndarray]:
    """Exact top-k ids for many queries, chunked over the query axis.

    With ``radius`` given, candidates farther than ``radius`` are excluded
    *before* the top-k cut — the ground truth for a range-limited
    near-neighbour query (matching what the distributed system can return).

    Distances go through :meth:`repro.metric.base.Metric.many_to_many`
    (column-exact with ``one_to_many``), so the batch ground truth agrees
    bit for bit with per-query :func:`exact_top_k` — ``pairwise`` overrides
    may use faster non-identical kernels (the Euclidean expansion trick).
    """
    n_q = queries.shape[0] if hasattr(queries, "shape") else len(queries)
    out: list[np.ndarray] = []
    for start in range(0, n_q, chunk):
        stop = min(start + chunk, n_q)
        block = take(queries, np.arange(start, stop))
        # rows must be one_to_many(query, dataset); many_to_many computes
        # columns that way, hence the transposed call.
        d = metric.many_to_many(dataset, block).T
        for row in d:
            if radius is not None:
                eligible = np.flatnonzero(row <= radius)
            else:
                eligible = np.arange(len(row))
            if len(eligible) == 0:
                out.append(np.empty(0, dtype=np.int64))
                continue
            kk = min(k, len(eligible))
            sub = row[eligible]
            top = np.argpartition(sub, kk - 1)[:kk]
            out.append(eligible[top[np.argsort(sub[top], kind="stable")]])
    return out
