"""Named experiment configurations — one per paper table/figure.

Each helper returns an :class:`repro.eval.runner.ExperimentConfig`.  Two
scales are offered:

* ``scale="bench"`` (default): reduced node/object/query counts tuned to run
  a full figure in minutes of CPU while preserving the paper's qualitative
  shape (who wins, where the crossovers are);
* ``scale="paper"``: the paper's own parameters (1740-host King-like
  network, 1e5 objects / full-size corpus, 2000 queries) — hours of pure
  Python, provided for completeness.
"""

from __future__ import annotations

from dataclasses import replace

from repro.eval.runner import ExperimentConfig, Scheme

__all__ = [
    "figure2_config",
    "figure3_config",
    "figure4_config",
    "figure5_config",
    "figure6_config",
    "SYNTHETIC_SCHEMES",
    "TREC_SCHEMES",
]

SYNTHETIC_SCHEMES = (
    Scheme("Greedy-5", "greedy", 5),
    Scheme("Greedy-10", "greedy", 10),
    Scheme("Kmean-5", "kmeans", 5),
    Scheme("Kmean-10", "kmeans", 10),
)

TREC_SCHEMES = (
    Scheme("Greedy-10", "greedy", 10),
    Scheme("Kmean-10", "kmeans", 10),
)


def _scaled(cfg: ExperimentConfig, scale: str) -> ExperimentConfig:
    if scale == "bench":
        return cfg
    if scale == "paper":
        return replace(
            cfg,
            n_nodes=1740,
            n_objects=100_000,
            n_queries=2000,
            corpus_scale=1.0,
        )
    raise ValueError(f"unknown scale {scale!r} (use 'bench' or 'paper')")


def figure2_config(scale: str = "bench", **overrides) -> ExperimentConfig:
    """Figure 2: synthetic dataset, four landmark schemes, **no** load balancing.

    Recall / hops / latency / bandwidth versus query range factor
    (0.1%–20%).  Paper headline: Kmean-10 and Greedy-10 reach 100% recall by
    a ~5% range factor; 10-landmark schemes beat 5-landmark ones.
    """
    cfg = ExperimentConfig(
        kind="synthetic",
        schemes=SYNTHETIC_SCHEMES,
        load_balance=False,
        boundary="metric",
    )
    return replace(_scaled(cfg, scale), **overrides)


def figure3_config(scale: str = "bench", **overrides) -> ExperimentConfig:
    """Figure 3: as Figure 2 but **with** dynamic load balancing (δ=0, P_l=4).

    Paper headline: recall dips and routing cost rises versus Figure 2; the
    5-landmark schemes now fare relatively better because their entries were
    already spread more evenly.
    """
    cfg = ExperimentConfig(
        kind="synthetic",
        schemes=SYNTHETIC_SCHEMES,
        load_balance=True,
        lb_delta=0.0,
        lb_probe_level=4,
        boundary="metric",
    )
    return replace(_scaled(cfg, scale), **overrides)


def figure4_config(scale: str = "bench", **overrides) -> ExperimentConfig:
    """Figure 4: load distribution on nodes (sorted decreasing), with LB.

    Paper headline: load is even after balancing; the maximally loaded node
    holds only 97 entries (at 1e5 entries / 1740 nodes).
    """
    return figure3_config(scale, **overrides)


def figure5_config(scale: str = "bench", **overrides) -> ExperimentConfig:
    """Figure 5: TREC-like corpus, Greedy-10 vs Kmean-10, with LB.

    Paper headline: greedy achieves higher recall at range factors < 1%
    (it maps queries and documents onto few nodes) but k-means wins from 1%
    to 20% with lower routing cost — greedy's document-drawn landmarks are
    nearly orthogonal to everything and cannot filter.
    """
    cfg = ExperimentConfig(
        kind="trec",
        schemes=TREC_SCHEMES,
        load_balance=True,
        lb_delta=0.0,
        lb_probe_level=4,
        sample_size=3000,
        boundary="sample",
    )
    return replace(_scaled(cfg, scale), **overrides)


def figure6_config(scale: str = "bench", **overrides) -> ExperimentConfig:
    """Figure 6: TREC load distribution — greedy stays concentrated even
    with LB (many documents collapse to a single key that cannot be split).
    """
    return figure5_config(scale, **overrides)
