"""A small fault-injected workload with the full observability stack on.

(Lives in ``eval`` because it drives the whole stack — platform, datasets,
overlay, faults; ``obs`` itself stays a leaf layer per layers.toml.)

This is what ``repro obs-demo`` runs and what CI records as artifacts: a
clustered synthetic dataset on a Chord overlay, queried under message loss
with lifecycle retries, with metrics, span tracing and health sampling all
enabled.  The run writes ``metrics.jsonl`` / ``metrics.prom`` /
``spans.jsonl`` / ``health.jsonl`` into ``out_dir``, so ``repro metrics``
and ``repro trace <qid>`` have something real to render and the e2e tests
have a deterministic workload to assert span/stat consistency on.
"""

from __future__ import annotations

from typing import Any

__all__ = ["run_demo"]


def run_demo(
    out_dir: Any = None,
    *,
    n_nodes: int = 32,
    n_objects: int = 2000,
    n_queries: int = 50,
    dim: int = 8,
    loss: float = 0.05,
    seed: int = 0,
    health_interval: float = 100.0,
    mean_interarrival: float = 20.0,
) -> dict:
    """Run the demo workload; returns the live objects plus written paths.

    All heavyweight imports happen here, not at module load, so importing
    :mod:`repro.obs` stays cheap for code that only wants the registry.
    """
    from pathlib import Path

    from repro.core.lifecycle import RetryPolicy
    from repro.core.platform import IndexPlatform
    from repro.datasets.queries import QueryWorkload, synthetic_query_points
    from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
    from repro.dht.ring import ChordRing
    from repro.metric.vector import EuclideanMetric
    from repro.obs import Observability
    from repro.obs.export import write_jsonl, write_prometheus
    from repro.obs.load import STORED_ENTRIES_GAUGE, record_load_vector
    from repro.sim.king import king_latency_model
    from repro.sim.transport import FaultConfig

    paths: dict[str, str] = {}
    out = None
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
    trace_path = str(out / "spans.jsonl") if out is not None else None

    latency = king_latency_model(n_hosts=n_nodes, seed=seed)
    ring = ChordRing.build(n_nodes, m=32, seed=seed, latency=latency, pns=False)
    cfg = ClusteredGaussianConfig(
        n_objects=n_objects, dim=dim, n_clusters=5, deviation=10.0)
    data, centers = generate_clustered(cfg, seed=seed + 1)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)

    obs = Observability(metrics=True, tracing=True, trace_path=trace_path)
    faults = FaultConfig(loss_rate=loss, seed=seed)
    with IndexPlatform(ring, faults=faults, obs=obs) as platform:
        index = platform.create_index(
            "demo", data, metric, k=4, selection="kmeans",
            sample_size=min(500, n_objects), seed=seed + 2,
        )
        qpoints = synthetic_query_points(cfg, n_queries, centers, seed=seed + 3)
        workload = QueryWorkload.build(
            qpoints, radius=0.05 * cfg.max_distance, n_nodes=len(ring),
            mean_interarrival=mean_interarrival, seed=seed + 4,
        )
        sampler = platform.health_sampler(interval=health_interval)
        sampler.start()
        stats = platform.run_workload(
            "demo", workload, reset_sim=False,
            policy=RetryPolicy(deadline=60.0, max_retries=2, rto=2.0),
        )
        record_load_vector(
            obs.registry, index.load_distribution(), metric=STORED_ENTRIES_GAUGE)

    # platform/obs are closed now: span sinks flushed, health sampler stopped.
    if out is not None:
        paths["spans"] = trace_path
        metrics_path = out / "metrics.jsonl"
        write_jsonl(obs.metrics_snapshot(), metrics_path)
        paths["metrics"] = str(metrics_path)
        prom_path = out / "metrics.prom"
        write_prometheus(obs.registry, prom_path)
        paths["prom"] = str(prom_path)
        health_path = out / "health.jsonl"
        write_jsonl(sampler.to_dicts(), health_path)
        paths["health"] = str(health_path)

    return {
        "obs": obs,
        "stats": stats,
        "sampler": sampler,
        "workload": workload,
        "index": index,
        "platform": platform,
        "paths": paths,
    }
