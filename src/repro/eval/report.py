"""ASCII rendering of experiment results in the shape of the paper's figures.

Every benchmark prints one of these tables; EXPERIMENTS.md records them next
to the paper's reported numbers.
"""

from __future__ import annotations


__all__ = [
    "format_table",
    "format_sweep",
    "format_load_distribution",
    "format_dict",
    "read_result_file",
    "SWEEP_METRICS",
]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Plain fixed-width table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)


#: default metric blocks of a sweep table; query bandwidth and maintenance
#: bandwidth are separate columns (the Fig. 3/5 cost comparisons need the
#: background overlay-upkeep cost split from the per-query cost)
SWEEP_METRICS = (
    "recall",
    "hops",
    "response_time",
    "max_latency",
    "total_bytes",
    "maintenance_bytes",
)


def format_sweep(result, metrics: tuple[str, ...] = SWEEP_METRICS) -> str:
    """Render an :class:`repro.eval.runner.ExperimentResult` sweep.

    One block per metric: rows are range factors, columns are schemes —
    the transposition of the paper's figure panels.
    """
    blocks = []
    range_factors = [row["range_factor"] for row in result.schemes[0].rows]
    for metric in metrics:
        headers = ["range%"] + [s.scheme.label for s in result.schemes]
        rows = []
        for i, rf in enumerate(range_factors):
            row = [f"{100 * rf:g}%"]
            for s in result.schemes:
                row.append(s.rows[i].get(metric, float("nan")))
            rows.append(row)
        blocks.append(format_table(headers, rows, title=f"[{metric}]"))
    return "\n\n".join(blocks)


def format_load_distribution(result, top_n: int = 10) -> str:
    """Render sorted per-node loads (Figures 4 / 6): top nodes + summary."""
    headers = ["scheme", "max", "mean", "gini", "nonzero-nodes"] + [
        f"#{i+1}" for i in range(top_n)
    ]
    rows = []
    for s in result.schemes:
        dist = s.load_distribution
        stats = s.load_stats
        top = list(dist[:top_n]) + [0] * max(0, top_n - len(dist))
        rows.append(
            [s.scheme.label, stats["max"], stats["mean"], stats["gini"], stats["nonzero"]]
            + [int(v) for v in top]
        )
    return format_table(headers, rows, title="[load distribution, sorted desc]")


def format_dict(d: dict, title: str = "") -> str:
    """Key/value block."""
    lines = [title] if title else []
    width = max((len(k) for k in d), default=0)
    for k, v in d.items():
        lines.append(f"  {k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)


def read_result_file(path: str) -> str:
    """Render a saved benchmark result, whichever format it is in.

    ``.txt`` files (the legacy fixed-width tables) pass through verbatim;
    ``.json`` files in the ``repro-bench/1`` schema are re-rendered with
    :func:`format_table`/:func:`format_dict`.  The JSON is parsed as a
    plain dict on purpose: eval sits below bench in the layer order, so
    this reader must not import :mod:`repro.bench`.
    """
    import json

    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    if not path.endswith(".json"):
        return text.rstrip("\n")
    doc = json.loads(text)
    if doc.get("schema") != "repro-bench/1":
        raise ValueError(f"{path}: not a repro-bench/1 file")
    blocks = [f"[suite {doc['suite']}]" + (" (quick)" if doc.get("quick") else "")]
    for sec in doc.get("sections", ()):
        if sec.get("kind") == "table":
            blocks.append(format_table(
                sec.get("headers", []), sec.get("rows", []),
                title=sec.get("title") or f"[{sec['name']}]",
            ))
        else:
            row = {
                "baseline": f"{sec.get('baseline_s'):.4f}s  ({sec.get('baseline_label')})",
                "candidate": f"{sec.get('candidate_s'):.4f}s  ({sec.get('candidate_label')})",
                "speedup": f"{sec.get('speedup')}x over {sec.get('repeats')} repeats",
            }
            blocks.append(format_dict(row, title=f"[{sec['name']}]"))
    if doc.get("summary"):
        blocks.append(format_dict(
            {k: v for k, v in doc["summary"].items() if not isinstance(v, dict)},
            title="[summary]",
        ))
    return "\n\n".join(blocks)
