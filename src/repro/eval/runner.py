"""Experiment runner: builds a full simulated system and sweeps query ranges.

One experiment = one dataset + one overlay + several landmark schemes
(e.g. Greedy-5/Greedy-10/Kmean-5/Kmean-10) swept over query range factors,
optionally with dynamic load balancing between construction and querying —
the structure of the paper's Figures 2, 3 and 5.  Ground truth is computed
once per dataset and shared by every scheme and range factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.lifecycle import RetryPolicy
from repro.core.loadbalance import LoadBalanceReport, dynamic_load_migration
from repro.core.platform import IndexPlatform
from repro.datasets.documents import SyntheticCorpusConfig, generate_corpus, generate_topics
from repro.datasets.queries import QueryWorkload, repeat_topics, synthetic_query_points
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import batch_exact_top_k
from repro.eval.metrics import load_summary, workload_recall
from repro.metric.cosine import SparseAngularMetric
from repro.metric.vector import EuclideanMetric
from repro.sim.transport import FaultConfig
from repro.util.rng import as_rng, spawn_rngs

__all__ = [
    "Scheme",
    "ExperimentConfig",
    "SchemeResult",
    "ExperimentResult",
    "DatasetBundle",
    "build_synthetic_bundle",
    "build_trec_bundle",
    "run_experiment",
]


@dataclass(frozen=True)
class Scheme:
    """One landmark-selection configuration, e.g. ``Kmean-10``."""

    label: str
    selection: str
    k: int


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one of the paper's experiments.

    The defaults are the *bench scale* (fast, shape-preserving); the paper
    scale uses 1740 hosts / 1e5 objects / 2000 queries — see
    :mod:`repro.eval.experiments` for both.
    """

    kind: str = "synthetic"  # "synthetic" | "trec"
    n_nodes: int = 128
    m: int = 64
    pns: bool = True
    successor_list_len: int = 16
    n_objects: int = 20_000
    n_queries: int = 200
    n_topics: int = 50  # trec only
    sample_size: int = 2000
    schemes: tuple[Scheme, ...] = (
        Scheme("Greedy-5", "greedy", 5),
        Scheme("Greedy-10", "greedy", 10),
        Scheme("Kmean-5", "kmeans", 5),
        Scheme("Kmean-10", "kmeans", 10),
    )
    range_factors: tuple[float, ...] = (0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20)
    load_balance: bool = False
    lb_delta: float = 0.0
    lb_probe_level: int = 4
    lb_max_rounds: int = 40
    rotation: bool = False
    boundary: str = "metric"
    refine_mode: str = "true"
    surrogate_mode: str = "fixed"
    #: The paper's recall protocol: index nodes return their 10 nearest
    #: candidates from the range rectangle *without* a radius cutoff (the
    #: rectangle is the gathering mechanism; §4.1's merge step ranks by true
    #: distance).  Set True for strict range-query semantics instead.
    range_filter: bool = False
    top_k: int = 10
    mean_interarrival: float = 150.0
    mean_rtt: float = 0.180
    #: Latency model: ``"matrix"`` samples the O(n²) King RTT matrix,
    #: ``"coordinate"`` fits lazy synthetic coordinates to the King
    #: distribution (O(n) memory, any ring size), ``"auto"`` picks matrix up
    #: to the King trace size (1740 hosts — bit-identical to the historical
    #: default) and coordinate beyond it.
    latency_model: str = "auto"
    seed: int = 0
    corpus_scale: float = 0.1  # trec only: fraction of the full AP corpus
    #: Optional transport fault model (loss / jitter / partitions) applied to
    #: every message of every scheme run; None = the paper's fault-free runs.
    faults: FaultConfig | None = None
    #: Optional lifecycle policy (per-query deadline, retransmission with
    #: exponential backoff).  Required for faulted runs to terminate with
    #: explicit per-query states instead of silently losing results.
    policy: RetryPolicy | None = None
    #: Pipelined batch execution (all queries of a sweep point in flight
    #: concurrently, harvested as they complete) versus the serial
    #: issue-and-drain baseline.  Identical per-query stats when faults are
    #: off; pipelined is the wall-clock-faster default.
    pipelined: bool = True


@dataclass
class SchemeResult:
    """Sweep results for one landmark scheme."""

    scheme: Scheme
    rows: list[dict[str, float]] = field(default_factory=list)
    load_distribution: np.ndarray | None = None
    load_stats: dict[str, float] = field(default_factory=dict)
    lb_report: LoadBalanceReport | None = None


@dataclass
class ExperimentResult:
    """All scheme sweeps of one experiment."""

    config: ExperimentConfig
    schemes: list[SchemeResult] = field(default_factory=list)

    def scheme(self, label: str) -> SchemeResult:
        for s in self.schemes:
            if s.scheme.label == label:
                return s
        raise KeyError(label)


@dataclass
class DatasetBundle:
    """A dataset with its metric, query objects and exact ground truth."""

    dataset: object
    metric: object
    query_objects: object  # indexable; one per workload query
    max_distance: float
    ground_truth: list[np.ndarray]
    boundary: str


def build_synthetic_bundle(cfg: ExperimentConfig) -> DatasetBundle:
    """The §4.2 workload: clustered Gaussians, Euclidean metric, Table 1 params."""
    rng_data, rng_query = spawn_rngs(cfg.seed, 2)
    data_cfg = ClusteredGaussianConfig(n_objects=cfg.n_objects)
    dataset, centers = generate_clustered(data_cfg, rng_data)
    metric = EuclideanMetric(box=(data_cfg.low, data_cfg.high), dim=data_cfg.dim)
    queries = synthetic_query_points(data_cfg, cfg.n_queries, centers, rng_query)
    truth = batch_exact_top_k(dataset, metric, queries, k=cfg.top_k)
    return DatasetBundle(
        dataset=dataset,
        metric=metric,
        query_objects=queries,
        max_distance=data_cfg.max_distance,
        ground_truth=truth,
        boundary=cfg.boundary,
    )


def build_trec_bundle(cfg: ExperimentConfig) -> DatasetBundle:
    """The §4.3 workload: synthetic AP-like corpus, angular metric, topic queries.

    50 topics are repeated to ``n_queries`` queries (the paper's setup);
    ground truth is computed per distinct topic and expanded positionally.
    """
    rng_data, rng_topic, rng_rep = spawn_rngs(cfg.seed, 3)
    corpus_cfg = SyntheticCorpusConfig().scaled(cfg.corpus_scale)
    corpus = generate_corpus(corpus_cfg, rng_data)
    metric = SparseAngularMetric()
    topics = generate_topics(corpus, n_topics=cfg.n_topics, seed=rng_topic)
    topic_truth = batch_exact_top_k(corpus.tfidf, metric, topics, k=cfg.top_k)
    idx, query_objects = repeat_topics(topics, cfg.n_queries, rng_rep)
    truth = [topic_truth[int(i)] for i in idx]
    return DatasetBundle(
        dataset=corpus.tfidf,
        metric=metric,
        query_objects=query_objects,
        max_distance=metric.upper_bound,
        ground_truth=truth,
        boundary="sample" if cfg.boundary == "metric" else cfg.boundary,
    )


def build_bundle(cfg: ExperimentConfig) -> DatasetBundle:
    """Dispatch on the experiment kind."""
    if cfg.kind == "synthetic":
        return build_synthetic_bundle(cfg)
    if cfg.kind == "trec":
        return build_trec_bundle(cfg)
    raise ValueError(f"unknown experiment kind {cfg.kind!r}")


def _build_platform(cfg: ExperimentConfig, seed_offset: int = 0, obs=None):
    """Fresh latency model + ring + platform for one scheme run."""
    from repro.sim.king import KING_N_HOSTS, king_coordinate_model, king_latency_model

    n_hosts = max(cfg.n_nodes, 64)
    mode = cfg.latency_model
    if mode == "auto":
        mode = "matrix" if n_hosts <= KING_N_HOSTS else "coordinate"
    if mode == "matrix":
        latency = king_latency_model(n_hosts=n_hosts, seed=cfg.seed + seed_offset)
    elif mode == "coordinate":
        latency = king_coordinate_model(n_hosts=n_hosts, seed=cfg.seed + seed_offset)
    else:
        raise ValueError(f"unknown latency_model {cfg.latency_model!r}")
    ring = ChordRing.build(
        cfg.n_nodes,
        m=cfg.m,
        seed=cfg.seed + seed_offset,
        latency=latency,
        pns=cfg.pns,
        successor_list_len=cfg.successor_list_len,
    )
    return IndexPlatform(ring, latency=latency, faults=cfg.faults, obs=obs)


def run_scheme(
    cfg: ExperimentConfig,
    scheme: Scheme,
    bundle: DatasetBundle,
    seed_offset: int = 0,
    obs=None,
) -> SchemeResult:
    """Build one index with ``scheme`` and sweep all range factors.

    ``obs`` is an optional :class:`repro.obs.Observability` shared across
    scheme runs; per-node load lands in its ``node_stored_entries`` gauge
    (labeled by scheme) and the figure benches read it back from the
    registry.  The platform is torn down via ``close()`` on every exit path
    so file-backed trace sinks can never be left truncated.
    """
    platform = _build_platform(cfg, seed_offset, obs=obs)
    try:
        platform.create_index(
            scheme.label,
            bundle.dataset,
            bundle.metric,
            k=scheme.k,
            selection=scheme.selection,
            sample_size=cfg.sample_size,
            boundary=bundle.boundary,
            rotation=cfg.rotation,
            refine_mode=cfg.refine_mode,
            seed=cfg.seed + 17 * seed_offset,
        )
        result = SchemeResult(scheme=scheme)
        if cfg.load_balance:
            result.lb_report = dynamic_load_migration(
                platform,
                delta=cfg.lb_delta,
                probe_level=cfg.lb_probe_level,
                max_rounds=cfg.lb_max_rounds,
                seed=cfg.seed + seed_offset,
            )
        index = platform.indexes[scheme.label]
        if obs is not None and obs.registry.enabled:
            from repro.obs.load import STORED_ENTRIES_GAUGE, gauge_vector, record_load_vector

            record_load_vector(
                obs.registry, index.load_distribution(),
                metric=STORED_ENTRIES_GAUGE,
                extra_labels=("scheme",), extra_values=(scheme.label,),
            )
            loads = gauge_vector(
                obs.registry, STORED_ENTRIES_GAUGE, match={"scheme": scheme.label}
            )
            result.load_distribution = np.sort(loads)[::-1]
        else:
            result.load_distribution = np.sort(index.load_distribution())[::-1]
        result.load_stats = load_summary(result.load_distribution)
        rng_workload = as_rng(cfg.seed + 1000 + seed_offset)
        for rf in cfg.range_factors:
            radius = rf * bundle.max_distance
            workload = QueryWorkload.build(
                bundle.query_objects,
                radius,
                n_nodes=len(platform.ring),
                mean_interarrival=cfg.mean_interarrival,
                seed=rng_workload,
            )
            stats = platform.run_workload(
                scheme.label,
                workload,
                pipelined=cfg.pipelined,
                policy=cfg.policy,
                surrogate_mode=cfg.surrogate_mode,
                top_k=cfg.top_k,
                range_filter=cfg.range_filter,
            )
            recall, _ = workload_recall(stats, bundle.ground_truth, k=cfg.top_k)
            row = stats.summary()
            row["range_factor"] = rf
            row["radius"] = radius
            row["recall"] = recall
            result.rows.append(row)
        return result
    finally:
        # the obs bundle may be shared across scheme runs — the caller closes
        # it; here we only flush the platform's own trace sink
        if platform.trace is not None:
            platform.trace.close()


def run_experiment(cfg: ExperimentConfig, bundle: DatasetBundle | None = None) -> ExperimentResult:
    """Run every scheme of ``cfg`` against one shared dataset bundle."""
    bundle = bundle or build_bundle(cfg)
    result = ExperimentResult(config=cfg)
    for i, scheme in enumerate(cfg.schemes):
        result.schemes.append(run_scheme(cfg, scheme, bundle, seed_offset=i))
    return result


@dataclass
class ReplicatedResult:
    """Mean/std aggregation of an experiment over independent seeds.

    ``mean``/``std`` hold, per scheme label and metric, arrays over the range
    factors; ``runs`` keeps the individual :class:`ExperimentResult` objects.
    """

    config: ExperimentConfig
    n_seeds: int
    runs: list[ExperimentResult] = field(default_factory=list)
    mean: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    std: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)


def run_replicated(cfg: ExperimentConfig, n_seeds: int = 3) -> ReplicatedResult:
    """Repeat an experiment over ``n_seeds`` independent seeds.

    A fresh dataset, overlay and workload are generated per seed (the seed
    perturbs everything downstream of ``cfg.seed``); per-metric means and
    standard deviations quantify run-to-run variability — a credible
    evaluation reports both.
    """
    out = ReplicatedResult(config=cfg, n_seeds=n_seeds)
    for s in range(n_seeds):
        run_cfg = replace(cfg, seed=cfg.seed + 1009 * s)
        out.runs.append(run_experiment(run_cfg))
    metrics = [k for k in out.runs[0].schemes[0].rows[0] if k != "range_factor"]
    for scheme_idx, scheme in enumerate(cfg.schemes):
        label = scheme.label
        out.mean[label] = {}
        out.std[label] = {}
        for metric in metrics:
            stacked = np.asarray(
                [
                    [row[metric] for row in run.schemes[scheme_idx].rows]
                    for run in out.runs
                ]
            )
            out.mean[label][metric] = stacked.mean(axis=0)
            out.std[label][metric] = stacked.std(axis=0)
    return out
