"""Automatic query expansion (paper §6, future work).

The paper names query expansion [15] as a planned extension: enrich a short
topic query with terms from its top-ranked results to improve recall and
precision.  We implement classic pseudo-relevance feedback on the document
workload: run the query, take the top ``n_feedback`` results, add their
``n_terms`` highest-TF/IDF terms (Rocchio-style weights), and re-run.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["expand_query"]


def expand_query(
    query_row: sparse.csr_matrix,
    feedback_docs: sparse.csr_matrix,
    n_terms: int = 10,
    alpha: float = 1.0,
    beta: float = 0.5,
) -> sparse.csr_matrix:
    """Rocchio pseudo-relevance-feedback expansion of a sparse query vector.

    ``query' = alpha * query + beta * centroid(feedback)`` restricted to the
    original terms plus the ``n_terms`` heaviest centroid terms.
    """
    if feedback_docs.shape[0] == 0:
        return query_row.copy()
    centroid = np.asarray(feedback_docs.mean(axis=0)).ravel()
    q = np.asarray(query_row.todense()).ravel()
    # Keep original query terms and the strongest centroid terms only.
    candidate = centroid.copy()
    candidate[q > 0] = 0.0
    if n_terms <= 0:
        # no expansion terms requested: keep the original terms only
        candidate[:] = 0.0
    elif n_terms < np.count_nonzero(candidate):
        cutoff = np.partition(candidate, -n_terms)[-n_terms]
        candidate[candidate < cutoff] = 0.0
    keep_centroid = np.where((q > 0) | (candidate > 0), centroid, 0.0)
    expanded = alpha * q + beta * keep_centroid
    return sparse.csr_matrix(expanded)
