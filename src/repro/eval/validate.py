"""Installation self-check: a small battery validating the core invariants.

Adopters can run ``python -c "from repro.eval.validate import self_check;
print(self_check())"`` (or the test suite) to confirm the stack behaves on
their platform: metric axioms, hash/geometry round trips, routed-query
completeness against centralised scans, and load-balancing conservation.
Every check is seeded and takes seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CheckResult", "self_check"]


@dataclass
class CheckResult:
    """Outcome of the self-check battery."""

    passed: list[str] = field(default_factory=list)
    failed: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed

    def __str__(self) -> str:
        lines = [f"self-check: {len(self.passed)} passed, {len(self.failed)} failed"]
        for name in self.passed:
            lines.append(f"  [ok]   {name}")
        for name, err in self.failed:
            lines.append(f"  [FAIL] {name}: {err}")
        return "\n".join(lines)


def _check(result: CheckResult, name: str, fn) -> None:
    try:
        fn()
        result.passed.append(name)
    except Exception as exc:  # noqa: BLE001 — report, don't crash the battery
        result.failed.append((name, f"{type(exc).__name__}: {exc}"))


def self_check(seed: int = 0) -> CheckResult:
    """Run the battery; returns a :class:`CheckResult` (``.ok`` for pass/fail)."""
    result = CheckResult()
    rng = np.random.default_rng(seed)

    def metric_axioms() -> None:
        from repro.metric import (
            EuclideanMetric,
            JaccardMetric,
            check_metric_axioms,
        )

        check_metric_axioms(EuclideanMetric(), rng.normal(size=(10, 4)))
        check_metric_axioms(
            JaccardMetric(), [frozenset(s) for s in ({1}, {1, 2}, {3}, set())]
        )

    _check(result, "metric axioms", metric_axioms)

    def hash_roundtrip() -> None:
        from repro.core.index_space import IndexSpaceBounds
        from repro.core.lph import key_to_cuboid, lp_hash, lp_hash_batch

        bounds = IndexSpaceBounds.uniform(3, 0.0, 1.0)
        pts = rng.uniform(0, 1, size=(50, 3))
        keys = lp_hash_batch(pts, bounds, 24)
        for i in range(50):
            assert int(keys[i]) == lp_hash(pts[i], bounds, 24)
            lo, hi = key_to_cuboid(int(keys[i]), bounds, 24)
            assert np.all(pts[i] >= lo - 1e-12) and np.all(pts[i] <= hi + 1e-12)

    _check(result, "locality-preserving hash round trip", hash_roundtrip)

    def routed_completeness() -> None:
        from repro.core.platform import IndexPlatform
        from repro.dht.ring import ChordRing
        from repro.eval.ground_truth import exact_range
        from repro.metric.vector import EuclideanMetric

        metric = EuclideanMetric(box=(0, 100), dim=4)
        data = rng.uniform(0, 100, size=(250, 4))
        ring = ChordRing.build(14, m=24, seed=seed)
        platform = IndexPlatform(ring)
        platform.create_index("check", data, metric, k=3, sample_size=120, seed=seed)
        for radius in (10.0, 60.0):
            proto, stats = platform.protocol("check", top_k=10**6)
            platform.sim.reset()
            q = platform.indexes["check"].make_query(data[0], radius, qid=0)
            proto.issue(q, ring.nodes()[0])
            platform.sim.run()
            got = sorted(e.object_id for e in stats.for_query(0).entries)
            want = sorted(exact_range(data, metric, data[0], radius).tolist())
            assert got == want, f"radius {radius}: {len(got)} vs {len(want)}"

    _check(result, "routed range query == centralised scan", routed_completeness)

    def chord_lookups() -> None:
        from repro.dht.ring import ChordRing

        ring = ChordRing.build(40, m=20, seed=seed)
        nodes = ring.nodes()
        for _ in range(40):
            key = int(rng.integers(0, 2**20))
            start = nodes[int(rng.integers(0, 40))]
            assert ring.lookup_path(start, key)[-1] is ring.successor_of(key)

    _check(result, "Chord lookups reach oracle owners", chord_lookups)

    def load_balance_conserves() -> None:
        from repro.core.loadbalance import dynamic_load_migration
        from repro.core.platform import IndexPlatform
        from repro.dht.ring import ChordRing
        from repro.metric.vector import EuclideanMetric

        metric = EuclideanMetric(box=(0, 100), dim=3)
        center = rng.uniform(40, 60, size=(1, 3))
        data = np.clip(center + rng.normal(0, 2, size=(400, 3)), 0, 100)
        ring = ChordRing.build(12, m=24, seed=seed)
        platform = IndexPlatform(ring)
        platform.create_index("lb", data, metric, k=2, seed=seed)
        before = platform.load_distribution().sum()
        report = dynamic_load_migration(platform, max_rounds=10, seed=seed)
        assert platform.load_distribution().sum() == before
        assert report.final_max_load <= report.initial_max_load

    _check(result, "dynamic load balancing conserves entries", load_balance_conserves)

    return result
