"""A Chord node: identifier, routing state and next-hop selection.

The routing table follows the paper's footnote 4: it is "composed of a
finger table, a successor list and the current node itself", and the
``next_hop`` of a key is "the one from the routing table whose identifier is
immediately before the prefix_key of the query on the ring" — i.e. the
closest *preceding* table entry, which is exactly Chord's greedy forwarding
rule.  When ``next_hop`` returns the node itself, the node is (in its view)
the predecessor of the key and the key's owner is its successor — Algorithm 3
then invokes ``SurrogateRefine`` on the successor.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.dht.idspace import cw_distance, in_interval_open_closed

__all__ = ["ChordNode"]


class ChordNode:
    """One overlay node.

    Attributes
    ----------
    id:
        ``m``-bit identifier (int).
    name:
        Human-readable name the id was hashed from.
    host:
        Endpoint index into the latency model (its "IP address").
    fingers:
        ``fingers[i]`` is the first node clockwise of ``id + 2**i``
        (``i = 0 .. m-1``); with PNS enabled it is instead the lowest-latency
        node whose identifier lies in ``[id + 2**i, id + 2**(i+1))``.
    successors:
        The next ``r`` nodes clockwise (paper default r = 16).
    predecessor:
        The node immediately counter-clockwise.
    """

    __slots__ = (
        "id",
        "name",
        "host",
        "m",
        "fingers",
        "successors",
        "predecessor",
        "_load_hint",
        "alive",
        "table_version",
        "_nh_cache",
    )

    #: safety cap of the per-node next-hop memo (distinct prefix keys seen
    #: between table changes); prevents unbounded growth on huge workloads.
    NH_CACHE_MAX = 4096

    def __init__(self, node_id: int, m: int, name: str = "", host: int = 0) -> None:
        self.id = int(node_id)
        self.m = m
        self.name = name or f"node-{node_id:x}"
        self.host = host
        self.fingers: list[ChordNode] = []
        self.successors: list[ChordNode] = []
        self.predecessor: ChordNode | None = None
        # Both per-node dicts are allocated lazily: a node that never hears
        # a load hint or routes a key pays nothing, which matters when a
        # 100k-node ring is built in bulk (two dict headers per node add up
        # to tens of MB of pure overhead before any traffic flows).
        self._load_hint: dict[int, float] | None = None
        #: liveness flag used by the churn/stabilisation simulation.
        self.alive: bool = True
        #: bumped by :meth:`invalidate_routing` whenever the routing table
        #: (fingers / successor list / identifier) changes — churn hooks in
        #: :mod:`repro.dht.ring` and :mod:`repro.dht.stabilize` call it after
        #: every table mutation.
        self.table_version: int = 0
        #: key -> next_hop memo, valid for the current table_version only.
        self._nh_cache: dict[int, ChordNode] | None = None

    def __repr__(self) -> str:
        return f"ChordNode({self.name}, id={self.id:#x})"

    @property
    def load_hint(self) -> dict[int, float]:
        """Piggybacked load information about neighbours (§3.4): node id ->
        last load value heard.  Allocated on first access."""
        if self._load_hint is None:
            self._load_hint = {}
        return self._load_hint

    # -- routing -------------------------------------------------------------

    @property
    def successor(self) -> ChordNode:
        """Immediate successor (first entry of the successor list)."""
        if not self.successors:
            return self
        return self.successors[0]

    def routing_table(self) -> Iterable[ChordNode]:
        """Finger table + successor list + self (footnote 4)."""
        seen = {self.id}
        yield self
        for n in self.fingers:
            if n.id not in seen:
                seen.add(n.id)
                yield n
        for n in self.successors:
            if n.id not in seen:
                seen.add(n.id)
                yield n

    def invalidate_routing(self) -> None:
        """Drop memoised lookups after a routing-table change.

        Must be called by anything that mutates ``fingers``, ``successors``
        or ``id`` — :meth:`ChordRing.rebuild_tables` and the stabilisation
        protocol's repair steps are the two mutation sites.  ``next_hop`` is
        a pure function of those inputs, so between invalidations the memo
        is exact.
        """
        self.table_version += 1
        if self._nh_cache:
            self._nh_cache.clear()

    def next_hop(self, key: int) -> ChordNode:
        """Closest table entry strictly preceding ``key`` on the ring.

        Returns ``self`` when no table entry is closer to the key than this
        node — meaning this node believes itself the key's predecessor.
        Entries whose identifier *equals* the key are never returned (the
        owner is reached via its predecessor's successor pointer).

        Memoised per key until :meth:`invalidate_routing` — the routing
        algorithms look the same prefix key up several times per hop (the
        split check and the forwarding pass), and popular short prefixes
        recur across queries.
        """
        cache = self._nh_cache
        if cache is None:
            cache = self._nh_cache = {}
        hit = cache.get(key)
        if hit is not None:
            return hit
        target = cw_distance(self.id, key, self.m)
        if target == 0:
            # key == self.id: route the full ring to reach our predecessor.
            target = 1 << self.m
        best = self
        best_d = 0
        for cand in self.routing_table():
            if cand.id == key:
                continue
            d = cw_distance(self.id, cand.id, self.m)
            if d < target and d > best_d:
                best, best_d = cand, d
        if len(cache) >= self.NH_CACHE_MAX:
            cache.clear()
        cache[key] = best
        return best

    def owns(self, key: int) -> bool:
        """Whether ``key`` lies in this node's ownership interval
        ``(predecessor, self]``."""
        if self.predecessor is None or self.predecessor is self:
            return True
        return in_interval_open_closed(key, self.predecessor.id, self.id, self.m)
