"""Array-backed Chord state for very large rings (the scale substrate).

:class:`repro.dht.ring.ChordRing` materialises one Python object per node,
with per-node finger/successor *lists of object references* — convenient for
protocol simulation, but ~25 KB per member once tables are built, which caps
practical rings at a few thousand nodes.  :class:`CompactChordRing` keeps the
same stabilised steady state as three flat arrays keyed by **dense node
slots** (positions in identifier order):

* ``ids``    — sorted ``uint64`` identifiers, shape ``(n,)``;
* ``hosts``  — latency-endpoint index per slot, shape ``(n,)``;
* ``fingers``— finger *slots* per node and level, shape ``(n, m)``,
  ``int32`` (a 100k-node, 64-bit ring costs ~26 MB instead of ~2.5 GB).

Successor lists need no storage at all: in the stabilised state the
successor list of slot ``s`` is exactly the next ``r`` slots clockwise,
``(s+1) ... (s+r) mod n``.

Routing is the same greedy closest-preceding-entry rule as
:meth:`ChordNode.next_hop` (footnote 4: fingers + successor list + self),
evaluated for *batches* of lookups at once: :meth:`route_batch` advances all
active queries one hop per vectorised round, so a million lookups cost
~``O(log n)`` NumPy passes rather than a million Python loops.  On identical
membership (classic fingers, no PNS) it reproduces
:meth:`ChordRing.lookup_path` hop-for-hop — the differential tests in
``tests/test_scale.py`` assert exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.dht.hashing import random_ids
from repro.util.rng import as_rng

__all__ = ["CompactChordRing"]

#: finger-table rebuild is chunked over node rows to bound the transient
#: ``(rows, m)`` uint64 "starts" buffer (16384 rows × 64 levels ≈ 8 MB).
_REBUILD_CHUNK = 16384


class CompactChordRing:
    """Stabilised Chord membership and routing state in flat arrays.

    Parameters
    ----------
    ids:
        Node identifiers (any order; sorted internally, must be distinct).
    hosts:
        Latency-endpoint index per identifier, aligned with ``ids``.
    m:
        Identifier bits (paper: 64).
    successor_list_len:
        Successor-list length ``r`` (paper / p2psim default: 16).
    """

    __slots__ = ("m", "mask", "successor_list_len", "ids", "hosts", "fingers")

    def __init__(
        self,
        ids: np.ndarray,
        hosts: np.ndarray,
        m: int = 64,
        successor_list_len: int = 16,
    ) -> None:
        ids = np.asarray(ids, dtype=np.uint64)
        hosts = np.asarray(hosts, dtype=np.int64)
        if ids.ndim != 1 or ids.shape != hosts.shape:
            raise ValueError("ids and hosts must be aligned 1-D arrays")
        if len(np.unique(ids)) != len(ids):
            raise ValueError("node identifiers must be distinct")
        order = np.argsort(ids)
        self.m = int(m)
        self.mask = np.uint64((1 << self.m) - 1) if self.m < 64 else np.uint64(
            0xFFFFFFFFFFFFFFFF
        )
        self.successor_list_len = int(successor_list_len)
        self.ids = ids[order]
        self.hosts = hosts[order]
        self.fingers = np.empty((0, 0), dtype=np.int32)
        self._rebuild_fingers()

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        n_nodes: int,
        m: int = 64,
        seed: int | np.random.Generator | None = 0,
        n_hosts: int | None = None,
        successor_list_len: int = 16,
    ) -> CompactChordRing:
        """A stabilised ring of ``n_nodes`` with uniform random identifiers.

        Hosts are drawn from ``n_hosts`` endpoints (default: one per node) —
        a permutation when the host space is large enough, with replacement
        otherwise, mirroring :meth:`ChordRing.build`.
        """
        rng = as_rng(seed)
        ids = random_ids(n_nodes, m, rng)
        pool = n_nodes if n_hosts is None else int(n_hosts)
        hosts = (
            rng.permutation(pool)[:n_nodes]
            if pool >= n_nodes
            else rng.integers(0, pool, size=n_nodes)
        )
        return cls(ids, hosts, m=m, successor_list_len=successor_list_len)

    @classmethod
    def from_ring(cls, ring: object) -> CompactChordRing:
        """Snapshot a :class:`ChordRing`'s membership (differential testing)."""
        nodes = ring.nodes()  # type: ignore[attr-defined]
        ids = np.asarray([node.id for node in nodes], dtype=np.uint64)
        hosts = np.asarray([node.host for node in nodes], dtype=np.int64)
        return cls(
            ids,
            hosts,
            m=ring.m,  # type: ignore[attr-defined]
            successor_list_len=ring.successor_list_len,  # type: ignore[attr-defined]
        )

    def __len__(self) -> int:
        return len(self.ids)

    def _rebuild_fingers(self) -> None:
        """Classic fingers for every node: ``finger[s, i] = slot of
        successor(ids[s] + 2^i)`` — one chunked searchsorted sweep."""
        n = len(self.ids)
        self.fingers = np.empty((n, self.m), dtype=np.int32)
        if n == 0:
            return
        shifts = np.uint64(1) << np.arange(self.m, dtype=np.uint64)
        for lo in range(0, n, _REBUILD_CHUNK):
            hi = min(lo + _REBUILD_CHUNK, n)
            starts = (self.ids[lo:hi, None] + shifts[None, :]) & self.mask
            idx = np.searchsorted(self.ids, starts.ravel(), side="left")
            idx[idx == n] = 0
            self.fingers[lo:hi] = idx.reshape(hi - lo, self.m).astype(np.int32)

    def bulk_join(self, new_ids: np.ndarray, new_hosts: np.ndarray) -> np.ndarray:
        """Admit a batch of nodes: one membership merge + one finger rebuild.

        Returns the slots of the new members (post-merge identifier order).
        The merge is a sorted-array union — O((n + k) log(n + k)) for the
        whole batch, versus k full per-join rebuilds on the object ring.
        """
        new_ids = np.asarray(new_ids, dtype=np.uint64)
        new_hosts = np.asarray(new_hosts, dtype=np.int64)
        if new_ids.shape != new_hosts.shape:
            raise ValueError("new_ids and new_hosts must be aligned")
        merged = np.concatenate([self.ids, new_ids])
        if len(np.unique(merged)) != len(merged):
            raise ValueError("bulk join would duplicate an identifier")
        order = np.argsort(merged)
        self.ids = merged[order]
        self.hosts = np.concatenate([self.hosts, new_hosts])[order]
        self._rebuild_fingers()
        slots = np.searchsorted(self.ids, new_ids, side="left")
        return slots.astype(np.int64)

    # -- oracle views ----------------------------------------------------------

    def owners_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Slot of the owner (first node clockwise) of each key."""
        keys = np.asarray(keys, dtype=np.uint64) & self.mask
        idx = np.searchsorted(self.ids, keys, side="left")
        idx[idx == len(self.ids)] = 0
        return idx.astype(np.int64)

    def successor_slots(self, slot: int) -> np.ndarray:
        """The successor list of ``slot``: the next ``r`` slots clockwise."""
        n = len(self.ids)
        r = min(self.successor_list_len, n - 1) if n > 1 else 0
        return (slot + 1 + np.arange(r, dtype=np.int64)) % n

    def check_invariants(self) -> None:
        """Structural self-check: sorted distinct ids, finger oracle equality.

        Raises ``AssertionError`` on violation.  The finger check recomputes
        the classic-finger definition from scratch and compares — meaningful
        after :meth:`bulk_join` merges, where an indexing slip would
        silently misroute.
        """
        n = len(self.ids)
        if n == 0:
            return
        assert np.all(np.diff(self.ids.astype(np.uint64)) > 0), "ids not sorted/unique"
        assert self.fingers.shape == (n, self.m), "finger table shape mismatch"
        assert np.all((self.fingers >= 0) & (self.fingers < n)), "finger slot range"
        expect = CompactChordRing.__new__(CompactChordRing)
        expect.m = self.m
        expect.mask = self.mask
        expect.successor_list_len = self.successor_list_len
        expect.ids = self.ids
        expect.hosts = self.hosts
        expect._rebuild_fingers()
        assert np.array_equal(expect.fingers, self.fingers), "fingers differ from oracle"
        assert np.array_equal(
            self.owners_of_keys(self.ids), np.arange(n, dtype=np.int64)
        ), "each node must own its own identifier"

    # -- bulk routing ----------------------------------------------------------

    def route_batch(
        self,
        src_slots: np.ndarray,
        keys: np.ndarray,
        latency: object | None = None,
        count_visits: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """Greedy Chord lookup for a batch of ``(source, key)`` pairs.

        Returns ``(owner_slots, hops, path_latency_s, visit_counts)``:

        * ``owner_slots[i]`` — slot owning ``keys[i]``;
        * ``hops[i]`` — forwarding hops, identical to
          ``len(ChordRing.lookup_path(...)) - 1`` on the same membership
          with classic (non-PNS) fingers;
        * ``path_latency_s[i]`` — sum of one-way delays along the hop path
          (zeros when ``latency`` is None), via
          :meth:`LatencyModel.latency_pairs`;
        * ``visit_counts`` — per-slot count of lookups *processed* (source
          and every intermediate node; the terminal owner hop is excluded —
          that is index load, not forwarding load).  None unless
          ``count_visits``.

        All queries advance one hop per vectorised round; finished ones drop
        out, so the loop runs ~``O(log n)`` rounds for the whole batch.
        """
        n = len(self.ids)
        if n == 0:
            raise RuntimeError("empty ring")
        keys = np.asarray(keys, dtype=np.uint64) & self.mask
        nq = len(keys)
        owner = np.searchsorted(self.ids, keys, side="left")
        owner[owner == n] = 0
        owner = owner.astype(np.int64)
        hops = np.zeros(nq, dtype=np.int64)
        lat = np.zeros(nq, dtype=np.float64)
        visits = np.zeros(n, dtype=np.int64) if count_visits else None
        cur = np.asarray(src_slots, dtype=np.int64).copy()
        if np.any((cur < 0) | (cur >= n)):
            raise ValueError("source slot out of range")
        if n == 1:
            return owner, hops, lat, visits
        if visits is not None:
            visits += np.bincount(cur, minlength=n)
        r = min(self.successor_list_len, n - 1)
        active = np.arange(nq, dtype=np.int64)
        # every round advances each active query >= 1 slot toward the
        # predecessor of its key, so n + 4m rounds is an unreachable cap
        for _ in range(n + 4 * self.m):
            if active.size == 0:
                break
            a_cur = cur[active]
            ps = (owner[active] - 1 - a_cur) % n
            done = ps == 0
            if np.any(done):
                di = active[done]
                hops[di] += 1
                if latency is not None:
                    lat[di] += latency.latency_pairs(  # type: ignore[attr-defined]
                        self.hosts[cur[di]], self.hosts[owner[di]]
                    )
                keep = ~done
                active = active[keep]
                if active.size == 0:
                    break
                a_cur = a_cur[keep]
                ps = ps[keep]
            # best successor-list step: furthest successor not past pred(key)
            step = np.minimum(ps, r)
            # best finger step: highest level whose finger precedes the key.
            # cw id-distance to the key bounds the first level to try; the
            # step-down loop discards levels whose finger overshoots.
            d = (keys[active] - self.ids[a_cur]) & self.mask
            lvl = np.full(len(active), self.m - 1, dtype=np.int64)
            nz = d != np.uint64(0)  # d == 0 (key == own id) routes the full ring
            lvl[nz] = np.minimum(
                np.floor(np.log2(d[nz].astype(np.float64))).astype(np.int64),
                self.m - 1,
            )
            pending = np.arange(len(active), dtype=np.int64)
            while pending.size:
                f_slot = self.fingers[a_cur[pending], lvl[pending]].astype(np.int64)
                sd = (f_slot - a_cur[pending]) % n
                ok = (sd > 0) & (sd <= ps[pending])
                hit = pending[ok]
                step[hit] = np.maximum(step[hit], sd[ok])
                pending = pending[~ok]
                lvl[pending] -= 1
                pending = pending[lvl[pending] >= 0]
            nxt = (a_cur + step) % n
            if latency is not None:
                lat[active] += latency.latency_pairs(  # type: ignore[attr-defined]
                    self.hosts[a_cur], self.hosts[nxt]
                )
            hops[active] += 1
            cur[active] = nxt
            if visits is not None:
                visits += np.bincount(nxt, minlength=n)
        else:
            raise RuntimeError("bulk lookup did not converge")
        return owner, hops, lat, visits
