"""The Chord ring: membership, table construction (with optional PNS) and lookups.

The simulator builds rings *structurally*: after any membership change the
affected routing state is recomputed from the global sorted membership, which
is the steady state Chord's stabilisation protocol converges to.  The paper
measures queries "after system stabilization" (§4.1), so simulating the
stabilisation chatter itself would only add constant background traffic; the
piggybacking argument of §3.3 is why the paper treats maintenance cost as
amortised away.

**Proximity neighbour selection** (Chord-PNS [9], the paper's protocol):
each node may choose, for finger level ``i``, *any* node whose identifier
falls in ``[n + 2^i, n + 2^(i+1))`` — PNS picks the physically closest
candidate by network latency.  Correctness is unaffected (any candidate is a
valid finger); lookup latency drops.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable

import numpy as np

from repro.dht.hashing import node_id, random_ids
from repro.dht.idspace import in_interval_open_closed
from repro.dht.node import ChordNode
from repro.sim.network import LatencyModel
from repro.util.rng import as_rng

__all__ = ["ChordRing"]


class ChordRing:
    """Global view of a Chord overlay.

    Parameters
    ----------
    m:
        Identifier bits (paper: 64).
    successor_list_len:
        Successor-list length (paper / p2psim default: 16).
    latency:
        Optional latency model; required for PNS finger selection.
    pns:
        Enable proximity neighbour selection for fingers.
    """

    def __init__(
        self,
        m: int = 64,
        successor_list_len: int = 16,
        latency: LatencyModel | None = None,
        pns: bool = False,
    ) -> None:
        if pns and latency is None:
            raise ValueError("PNS finger selection needs a latency model")
        self.m = m
        self.successor_list_len = successor_list_len
        self.latency = latency
        self.pns = pns
        self.nodes_by_id: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []

    # -- membership -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes_by_id)

    def __iter__(self) -> Iterable[ChordNode]:
        return iter(self.nodes())

    def nodes(self) -> list[ChordNode]:
        """All nodes in identifier order."""
        return [self.nodes_by_id[i] for i in self._sorted_ids]

    @classmethod
    def build(
        cls,
        n_nodes: int,
        m: int = 64,
        seed: int | np.random.Generator | None = 0,
        latency: LatencyModel | None = None,
        pns: bool = False,
        successor_list_len: int = 16,
        id_source: str = "hash",
    ) -> ChordRing:
        """Construct a stabilised ring of ``n_nodes``.

        ``id_source="hash"`` derives ids by SHA-1 of node names (consistent
        hashing, as Chord does); ``"random"`` draws uniform ids directly.
        Hosts (latency endpoints) are assigned randomly from the latency
        model's host set.
        """
        rng = as_rng(seed)
        ring = cls(m=m, successor_list_len=successor_list_len, latency=latency, pns=pns)
        if id_source == "hash":
            ids: list[int] = []
            seen: set[int] = set()
            salt = 0
            while len(ids) < n_nodes:
                nid = node_id(f"node-{len(ids)}-{salt}", m)
                if nid in seen:
                    salt += 1
                    continue
                seen.add(nid)
                ids.append(nid)
        elif id_source == "random":
            ids = [int(v) for v in random_ids(n_nodes, m, rng)]
        else:
            raise ValueError(f"unknown id_source {id_source!r}")
        if latency is not None:
            hosts = rng.permutation(latency.n_hosts)[:n_nodes] if latency.n_hosts >= n_nodes \
                else rng.integers(0, latency.n_hosts, size=n_nodes)
        else:
            hosts = np.arange(n_nodes)
        for i, nid in enumerate(ids):
            node = ChordNode(nid, m, name=f"node-{i}", host=int(hosts[i]))
            ring.nodes_by_id[nid] = node
        ring._sorted_ids = sorted(ring.nodes_by_id)
        ring.rebuild_tables()
        return ring

    def add_node(self, node_id_: int, name: str = "", host: int = 0, rebuild: bool = True) -> ChordNode:
        """Insert a node with an explicit identifier (join)."""
        if node_id_ in self.nodes_by_id:
            raise ValueError(f"identifier {node_id_:#x} already on the ring")
        node = ChordNode(node_id_, self.m, name=name, host=host)
        self.nodes_by_id[node_id_] = node
        idx = bisect_left(self._sorted_ids, node_id_)
        self._sorted_ids.insert(idx, node_id_)
        if rebuild:
            self.rebuild_tables()
        return node

    def bulk_add_nodes(
        self,
        node_ids: Iterable[int],
        hosts: Iterable[int] | None = None,
        names: Iterable[str] | None = None,
        rebuild: bool = True,
    ) -> list[ChordNode]:
        """Insert many nodes with **one** table rebuild (batched join).

        Equivalent to a loop of :meth:`add_node` with ``rebuild=False``
        followed by :meth:`rebuild_tables`, but with a single sort of the
        merged membership instead of one bisect-insert per node — the
        membership half of the scale refactor's bulk-join path.  Returns the
        new nodes in the order given.
        """
        ids = [int(i) for i in node_ids]
        host_list = [int(h) for h in hosts] if hosts is not None else [0] * len(ids)
        name_list = list(names) if names is not None else [""] * len(ids)
        if len(host_list) != len(ids) or len(name_list) != len(ids):
            raise ValueError("hosts/names must align with node_ids")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate identifiers in bulk join batch")
        created: list[ChordNode] = []
        for nid, host, name in zip(ids, host_list, name_list):
            if nid in self.nodes_by_id:
                raise ValueError(f"identifier {nid:#x} already on the ring")
            node = ChordNode(nid, self.m, name=name, host=host)
            self.nodes_by_id[nid] = node
            created.append(node)
        self._sorted_ids = sorted(self.nodes_by_id)
        if rebuild:
            self.rebuild_tables()
        return created

    def remove_node(self, node: ChordNode, rebuild: bool = True) -> None:
        """Remove a node (leave)."""
        del self.nodes_by_id[node.id]
        idx = bisect_left(self._sorted_ids, node.id)
        del self._sorted_ids[idx]
        if rebuild:
            self.rebuild_tables()

    def move_node(self, node: ChordNode, new_id: int) -> ChordNode:
        """Leave-and-rejoin with a chosen identifier (dynamic load balancing).

        Returns the same node object with its identifier replaced; routing
        tables are rebuilt.
        """
        if new_id in self.nodes_by_id:
            raise ValueError(f"identifier {new_id:#x} already on the ring")
        del self.nodes_by_id[node.id]
        idx = bisect_left(self._sorted_ids, node.id)
        del self._sorted_ids[idx]
        node.id = int(new_id)
        self.nodes_by_id[node.id] = node
        self._sorted_ids.insert(bisect_left(self._sorted_ids, node.id), node.id)
        self.rebuild_tables()
        return node

    # -- oracle lookups --------------------------------------------------------

    def successor_of(self, key: int) -> ChordNode:
        """The node owning ``key`` (first node clockwise from ``key``)."""
        if not self._sorted_ids:
            raise RuntimeError("empty ring")
        idx = bisect_left(self._sorted_ids, key % (1 << self.m))
        if idx == len(self._sorted_ids):
            idx = 0
        return self.nodes_by_id[self._sorted_ids[idx]]

    def predecessor_of(self, key: int) -> ChordNode:
        """The last node strictly before ``key``."""
        if not self._sorted_ids:
            raise RuntimeError("empty ring")
        idx = bisect_left(self._sorted_ids, key % (1 << self.m)) - 1
        return self.nodes_by_id[self._sorted_ids[idx]]

    def interval_of(self, node: ChordNode) -> tuple[int, int]:
        """The ownership interval ``(predecessor_id, node_id]`` of a member.

        These are exactly the keys :meth:`successor_of` maps to ``node``
        (cyclic — ``lo > hi`` means the interval wraps through zero).  Used
        by the invariant checker to prove every key has exactly one owner.
        """
        if node.id not in self.nodes_by_id:
            raise ValueError(f"node {node.id:#x} not on the ring")
        idx = bisect_left(self._sorted_ids, node.id)
        return self._sorted_ids[idx - 1], node.id

    def owners_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised ``successor_of`` for bulk index loading.

        Returns, for each key, the position of the owning node within
        :meth:`nodes` (identifier order).
        """
        ids = np.asarray(self._sorted_ids, dtype=np.uint64)
        keys = np.asarray(keys, dtype=np.uint64)
        idx = np.searchsorted(ids, keys, side="left")
        idx[idx == len(ids)] = 0
        return idx

    # -- table construction ------------------------------------------------------

    def rebuild_tables(self) -> None:
        """Recompute fingers, successor lists and predecessors for all nodes.

        This is the stabilised steady state; with PNS enabled, fingers are
        the lowest-latency members of their candidate intervals.
        """
        ids = self._sorted_ids
        n = len(ids)
        if n == 0:
            return
        nodes = [self.nodes_by_id[i] for i in ids]
        two_m = 1 << self.m
        id_arr = np.asarray(ids, dtype=np.uint64)
        r = min(self.successor_list_len, n - 1) if n > 1 else 0
        for pos, node in enumerate(nodes):
            node.successors = [nodes[(pos + 1 + i) % n] for i in range(r)] or [node]
            node.predecessor = nodes[(pos - 1) % n]
        if not self.pns:
            # Vectorised classic fingers: finger i of node = successor(id + 2^i),
            # one searchsorted over all (node, level) pairs.
            mask = np.uint64(two_m - 1)
            shifts = (np.uint64(1) << np.arange(self.m, dtype=np.uint64))
            starts = (id_arr[:, None] + shifts[None, :]) & mask
            idx = np.searchsorted(id_arr, starts.ravel(), side="left").reshape(n, self.m)
            idx[idx == n] = 0
            for pos, node in enumerate(nodes):
                node.fingers = [nodes[i] for i in idx[pos]] if n > 1 else []
                node.invalidate_routing()
            return
        for node in nodes:
            node.fingers = self._fingers_for(node, id_arr, nodes, two_m)
            node.invalidate_routing()

    def _fingers_for(
        self,
        node: ChordNode,
        id_arr: np.ndarray,
        nodes: list[ChordNode],
        two_m: int,
    ) -> list[ChordNode]:
        n = len(nodes)
        fingers: list[ChordNode] = []
        if n == 1:
            return fingers
        hosts = np.asarray([nd.host for nd in nodes], dtype=np.intp)
        for i in range(self.m):
            start = (node.id + (1 << i)) % two_m
            end = (node.id + (1 << (i + 1))) % two_m
            cand_pos = self._positions_in(id_arr, start, end)
            if cand_pos.size == 0:
                # No member in [start, end): classic Chord still points the
                # finger at successor(start).
                idx = int(np.searchsorted(id_arr, np.uint64(start), side="left"))
                if idx == n:
                    idx = 0
                fingers.append(nodes[idx])
                continue
            lat = self.latency.latency_row(node.host, hosts[cand_pos])
            fingers.append(nodes[int(cand_pos[int(np.argmin(lat))])])
        return fingers

    @staticmethod
    def _positions_in(id_arr: np.ndarray, start: int, end: int) -> np.ndarray:
        """Positions of sorted ids lying in the cyclic interval [start, end)."""
        if start == end:
            return np.arange(len(id_arr))
        if start < end:
            lo = np.searchsorted(id_arr, np.uint64(start), side="left")
            hi = np.searchsorted(id_arr, np.uint64(end), side="left")
            return np.arange(lo, hi)
        lo = np.searchsorted(id_arr, np.uint64(start), side="left")
        hi = np.searchsorted(id_arr, np.uint64(end), side="left")
        return np.concatenate([np.arange(lo, len(id_arr)), np.arange(0, hi)])

    # -- iterative lookup (used by the naive baseline and tests) -----------------

    def lookup_path(self, start: ChordNode, key: int) -> list[ChordNode]:
        """Greedy Chord lookup path from ``start`` to the owner of ``key``.

        Returns the node sequence ``[start, ..., owner]``; its length minus
        one is the hop count.
        """
        path = [start]
        current = start
        for _ in range(4 * self.m + len(self)):
            if in_interval_open_closed(key, current.id, current.successor.id, self.m):
                owner = current.successor
                if owner is not current:
                    path.append(owner)
                return path
            nh = current.next_hop(key)
            if nh is current:
                owner = current.successor
                if owner is not current:
                    path.append(owner)
                return path
            path.append(nh)
            current = nh
        raise RuntimeError(f"lookup for key {key:#x} did not converge")
