"""Circular identifier-space arithmetic for Chord (``m``-bit ring).

All identifiers live in ``[0, 2**m)``; the ring wraps.  The interval helpers
use the half-open/closed conventions of the Chord paper: a key ``x`` belongs
to node ``n`` iff ``x ∈ (predecessor(n), n]``.
"""

from __future__ import annotations

__all__ = [
    "in_interval_open",
    "in_interval_open_closed",
    "in_interval_closed_open",
    "cw_distance",
]


def cw_distance(a: int, b: int, m: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ``2**m`` ring."""
    return (b - a) % (1 << m)


def in_interval_open(x: int, a: int, b: int, m: int) -> bool:
    """``x ∈ (a, b)`` on the ring.  Empty when ``a == b``? No — by Chord
    convention ``(a, a)`` is the *full* ring minus ``a`` (wraps all the way)."""
    size = 1 << m
    x, a, b = x % size, a % size, b % size
    if a == b:
        return x != a
    return cw_distance(a, x, m) > 0 and cw_distance(a, x, m) < cw_distance(a, b, m)


def in_interval_open_closed(x: int, a: int, b: int, m: int) -> bool:
    """``x ∈ (a, b]`` on the ring (ownership interval: successor owns it)."""
    size = 1 << m
    x, a, b = x % size, a % size, b % size
    if a == b:
        return True  # single node owns the whole ring
    d_ax = cw_distance(a, x, m)
    return 0 < d_ax <= cw_distance(a, b, m)


def in_interval_closed_open(x: int, a: int, b: int, m: int) -> bool:
    """``x ∈ [a, b)`` on the ring (finger-candidate interval)."""
    size = 1 << m
    x, a, b = x % size, a % size, b % size
    if a == b:
        return True
    d_ax = cw_distance(a, x, m)
    return d_ax < cw_distance(a, b, m)
