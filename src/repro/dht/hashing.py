"""Consistent hashing of node names and index names to the identifier ring.

Chord assigns node identifiers by hashing (the paper: "Chord uses consistent
hashing, e.g. SHA-1, to map nodes to the identifier space"), which makes node
ids essentially uniform on the ring.  The same machinery provides the
*random rotation offset* ``φ`` of the static load-balancing scheme (§3.4):
``φ`` is obtained "by hashing (random hashing function) the name of the
corresponding index".
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.util.rng import as_rng

__all__ = ["hash_to_id", "node_id", "rotation_offset", "random_ids"]


def hash_to_id(data: bytes, m: int) -> int:
    """SHA-1 of ``data`` truncated to the top ``m`` bits."""
    digest = hashlib.sha1(data).digest()
    value = int.from_bytes(digest, "big")
    return value >> (160 - m) if m <= 160 else value << (m - 160)


def node_id(name: str, m: int) -> int:
    """Identifier of a node named ``name`` (e.g. ``"node-17"`` or an IP)."""
    return hash_to_id(name.encode("utf-8"), m)


def rotation_offset(index_name: str, m: int) -> int:
    """The static load-balancing rotation ``φ`` for an index (§3.4).

    A distinct salt keeps ``φ`` independent of any node that happens to share
    the index's name.
    """
    return hash_to_id(b"rotation:" + index_name.encode("utf-8"), m)


def random_ids(n: int, m: int, seed: int | np.random.Generator | None = 0) -> np.ndarray:
    """``n`` distinct uniform identifiers (uint64), for synthetic rings."""
    rng = as_rng(seed)
    if m > 64:
        raise ValueError("random_ids supports m <= 64")
    size = 1 << m
    if n > size:
        raise ValueError(f"cannot draw {n} distinct ids from a {m}-bit space")
    ids = set()
    out = np.empty(n, dtype=np.uint64)
    filled = 0
    while filled < n:
        batch = rng.integers(0, size, size=n - filled, dtype=np.uint64)
        for v in batch:
            iv = int(v)
            if iv not in ids:
                ids.add(iv)
                out[filled] = v
                filled += 1
                if filled == n:
                    break
    return out
