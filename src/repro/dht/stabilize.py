"""Chord stabilisation, churn and maintenance-cost accounting.

The rest of the library builds rings *structurally* (oracle tables — the
steady state the protocol converges to), because the paper measures queries
"after system stabilization".  This module supplies the protocol itself, for
three purposes:

1. **Fidelity** — joins, graceful leaves and crashes repaired by the actual
   Chord maintenance loop (``stabilize``/``notify``, ``fix_fingers``,
   successor-list copying), with convergence verifiable against the oracle;
2. **Maintenance cost** — every control message is counted in bytes, so the
   background cost of keeping the overlay alive is measurable;
3. **Piggybacking** (§3.3) — the paper claims "the maintenance messages for
   the DHT links can be piggybacked onto the query delivery messages, so as
   to reduce the maintenance cost".  We model a per-link piggyback window:
   a control message over a link that carried (or will shortly carry) query
   traffic rides along and only pays its payload bytes, not a packet of its
   own.  The ablation benchmark quantifies the saving under a live query
   workload.

Control messages flow through the shared
:class:`repro.sim.transport.Transport` (as synchronous, accounted hops —
their latencies are negligible against the maintenance intervals), so
injected faults degrade maintenance the same way they degrade queries: a
lost stabilize request simply skips that round's repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Any

from repro.dht.idspace import in_interval_open, in_interval_open_closed
from repro.dht.node import ChordNode
from repro.dht.ring import ChordRing
from repro.sim.transport import Protocol
from repro.util.rng import as_rng

__all__ = ["MaintenanceConfig", "MaintenanceStats", "StabilizationProtocol"]

#: bytes of a standalone control message: 20 header + 4 source + 4 payload
CONTROL_MESSAGE_BYTES = 28
#: payload-only cost when piggybacked on a query message
PIGGYBACK_PAYLOAD_BYTES = 4


@dataclass(frozen=True)
class MaintenanceConfig:
    """Timer settings of the maintenance loop (p2psim-like defaults)."""

    stabilize_interval: float = 30.0
    fix_finger_interval: float = 30.0
    successor_list_interval: float = 60.0
    #: enable the §3.3 piggybacking optimisation
    piggyback: bool = False
    #: a control message piggybacks when the same directed link carried a
    #: query message within this many seconds
    piggyback_window: float = 30.0


@dataclass
class MaintenanceStats:
    """Counters of the maintenance traffic."""

    messages: int = 0
    bytes: int = 0
    piggybacked: int = 0
    bytes_saved: int = 0
    joins: int = 0
    leaves: int = 0
    crashes: int = 0

    def total_cost(self) -> int:
        return self.bytes


class StabilizationProtocol(Protocol):
    """Event-driven Chord maintenance over the discrete-event simulator.

    The protocol operates purely on node-local state (``successors``,
    ``predecessor``, ``fingers``); the ring's oracle views are used only by
    callers to verify convergence.  Dead nodes are detected by liveness
    checks on contact (a timeout in a real deployment).
    """

    def __init__(
        self,
        ring: ChordRing,
        sim: Any = None,
        latency: Any = None,
        config: MaintenanceConfig | None = None,
        seed: int | np.random.Generator | None = 0,
        transport: Any = None,
        obs: Any = None,
    ) -> None:
        super().__init__(
            sim=sim,
            latency=latency if latency is not None else ring.latency,
            transport=transport,
        )
        self.ring = ring
        self.config = config if config is not None else MaintenanceConfig()
        self.rng = as_rng(seed)
        registry = obs.registry if obs is not None else None
        if registry is not None and registry.enabled:
            self._m_control = registry.counter(
                "maintenance_control_total", "Maintenance control messages",
                ("piggyback",))
            self._m_saved = registry.counter(
                "maintenance_bytes_saved_total",
                "Bytes saved by piggybacking on query traffic")
            self._m_churn = registry.counter(
                "maintenance_churn_total", "Membership events", ("event",))
        else:
            self._m_control = self._m_saved = self._m_churn = None
        self._running = False
        #: next finger level to fix, per node id
        self._finger_cursor: dict[int, int] = {}
        #: last time a query message used the directed link (src_host, dst_host)
        self._link_query_time: dict[tuple[int, int], float] = {}

    def default_stats(self) -> MaintenanceStats:
        return MaintenanceStats()

    # -- piggyback plumbing ------------------------------------------------------

    def note_query_traffic(self, src_host: int, dst_host: int, at: float | None = None) -> None:
        """Record query traffic on a link (wired in by the query protocol)."""
        self._link_query_time[(src_host, dst_host)] = self.sim.now if at is None else at

    def _control_message(self, src: ChordNode, dst: ChordNode) -> bool:
        """Account one control message from ``src`` to ``dst``.

        Returns whether it was delivered; without injected faults that is
        always True, so callers' early-outs are dead code in clean runs.
        """
        if src is dst:
            return True
        self.stats.messages += 1
        size = CONTROL_MESSAGE_BYTES
        piggybacked = False
        if self.config.piggyback:
            last = self._link_query_time.get((src.host, dst.host))
            if last is not None and self.sim.now - last <= self.config.piggyback_window:
                piggybacked = True
                self.stats.piggybacked += 1
                self.stats.bytes_saved += CONTROL_MESSAGE_BYTES - PIGGYBACK_PAYLOAD_BYTES
                size = PIGGYBACK_PAYLOAD_BYTES
        self.stats.bytes += size
        if self._m_control is not None:
            self._m_control.inc(("yes" if piggybacked else "no",))
            if piggybacked:
                self._m_saved.add(CONTROL_MESSAGE_BYTES - PIGGYBACK_PAYLOAD_BYTES)
        return self.transport.control(src, dst, kind="maintenance", size=size)

    # -- lifecycle -----------------------------------------------------------------

    def start(self, duration: float) -> None:
        """Schedule periodic maintenance for every current member until
        ``duration`` (new joiners are scheduled by :meth:`join`)."""
        self._running = True
        self._deadline = self.sim.now + duration
        for node in list(self.ring.nodes()):
            self._schedule_node(node)

    def _schedule_node(self, node: ChordNode) -> None:
        jitter = float(self.rng.uniform(0.0, 1.0))
        self.transport.timer(
            jitter + float(self.rng.uniform(0, self.config.stabilize_interval)),
            self._stabilize_tick, node,
        )
        self.transport.timer(
            jitter + float(self.rng.uniform(0, self.config.fix_finger_interval)),
            self._fix_finger_tick, node,
        )
        self.transport.timer(
            jitter + float(self.rng.uniform(0, self.config.successor_list_interval)),
            self._successor_list_tick, node,
        )

    def _active(self, node: ChordNode) -> bool:
        return self._running and node.alive and self.sim.now <= self._deadline

    # -- periodic tasks ----------------------------------------------------------------

    def _stabilize_tick(self, node: ChordNode) -> None:
        if not self._active(node):
            return
        self.stabilize(node)
        self.transport.timer(self.config.stabilize_interval, self._stabilize_tick, node)

    def _fix_finger_tick(self, node: ChordNode) -> None:
        if not self._active(node):
            return
        self.fix_next_finger(node)
        self.transport.timer(self.config.fix_finger_interval, self._fix_finger_tick, node)

    def _successor_list_tick(self, node: ChordNode) -> None:
        if not self._active(node):
            return
        self.copy_successor_list(node)
        self.transport.timer(
            self.config.successor_list_interval, self._successor_list_tick, node
        )

    # -- the Chord maintenance operations -------------------------------------------------

    def _first_live_successor(self, node: ChordNode) -> ChordNode | None:
        pruned = False
        while node.successors and not node.successors[0].alive:
            node.successors.pop(0)
            pruned = True
        if pruned:
            node.invalidate_routing()
        return node.successors[0] if node.successors else None

    def _recover_successor(self, node: ChordNode) -> ChordNode | None:
        """Emergency re-entry when the whole successor list died.

        A node whose every known successor crashed can never repair through
        the normal stabilize round (it has nobody to ask), so it falls back
        to any live contact — its predecessor or a live finger — and lets
        stabilisation walk from there back to the true successor.  This is
        the Chord paper's "rejoin through any known live node".
        """
        pred = node.predecessor
        if pred is not None and pred.alive and pred is not node:
            return pred
        for f in node.fingers:
            if f.alive and f is not node:
                return f
        return None

    def stabilize(self, node: ChordNode) -> None:
        """``n.stabilize()``: verify the immediate successor, adopt a closer
        one learned from it, and notify it of our existence."""
        succ = self._first_live_successor(node)
        if succ is None:
            succ = self._recover_successor(node)
            if succ is None:
                return
            node.successors = [succ]
            node.invalidate_routing()
        # ask successor for its predecessor (request + response)
        if not self._control_message(node, succ):
            return
        if not self._control_message(succ, node):
            return
        x = succ.predecessor
        if (
            x is not None
            and x.alive
            and x is not node
            and in_interval_open(x.id, node.id, succ.id, node.m)
        ):
            node.successors.insert(0, x)
            del node.successors[self.ring.successor_list_len :]
            node.invalidate_routing()
            succ = x
        # notify
        if self._control_message(node, succ):
            self.notify(succ, node)

    def notify(self, node: ChordNode, candidate: ChordNode) -> None:
        """``n.notify(c)``: ``c`` believes it is our predecessor."""
        pred = node.predecessor
        if (
            pred is None
            or not pred.alive
            or in_interval_open(candidate.id, pred.id, node.id, node.m)
        ):
            node.predecessor = candidate

    def copy_successor_list(self, node: ChordNode) -> None:
        """Refresh the successor list from the immediate successor."""
        succ = self._first_live_successor(node)
        if succ is None or succ is node:
            return
        if not self._control_message(node, succ):
            return
        if not self._control_message(succ, node):
            return
        node.successors = self._merged_successors(node, succ)
        node.invalidate_routing()

    def _merged_successors(self, node: ChordNode, succ: ChordNode) -> list[ChordNode]:
        """``[succ] + succ.successors``, live, deduplicated, length-capped."""
        merged: list[ChordNode] = [succ]
        for s in succ.successors:
            if s is node or not s.alive:
                continue
            if all(s is not t for t in merged):
                merged.append(s)
            if len(merged) >= self.ring.successor_list_len:
                break
        return merged

    def local_lookup(self, start: ChordNode, key: int, max_hops: int | None = None) -> tuple[ChordNode | None, int]:
        """Greedy lookup using only node-local (possibly stale) tables.

        Returns ``(owner_or_None, hops)``; each hop costs one control
        message.  Dead next-hops are skipped (their entries are stale); a
        fault-dropped hop fails the lookup (a timeout in a real deployment).
        """
        limit = max_hops if max_hops is not None else 4 * self.ring.m + len(self.ring)
        current = start
        hops = 0
        for _ in range(limit):
            succ = self._first_live_successor(current)
            if succ is None:
                return current, hops
            if in_interval_open_closed(key, current.id, succ.id, current.m):
                if succ is not current:
                    hops += 1
                    if not self._control_message(current, succ):
                        return None, hops
                return succ, hops
            nh = current.next_hop(key)
            while nh is not current and not nh.alive:
                # stale table entry: fall back toward the successor
                nh = succ if succ.alive else current
                break
            if nh is current:
                return succ, hops
            hops += 1
            if not self._control_message(current, nh):
                return None, hops
            current = nh
        return None, hops

    def fix_next_finger(self, node: ChordNode) -> None:
        """Refresh one finger level per firing (round-robin)."""
        if len(self.ring) <= 1:
            return
        level = self._finger_cursor.get(node.id, 0)
        self._finger_cursor[node.id] = (level + 1) % node.m
        target = (node.id + (1 << level)) % (1 << node.m)
        owner, _ = self.local_lookup(node, target)
        if owner is None:
            return
        while len(node.fingers) <= level:
            node.fingers.append(node)
        node.fingers[level] = owner
        node.invalidate_routing()

    # -- membership under churn ---------------------------------------------------------------

    def join(self, node_id: int, bootstrap: ChordNode, name: str = "", host: int = 0) -> ChordNode:
        """Protocol-level join: find the successor via lookup, splice in, and
        start maintenance timers.  Tables converge via stabilisation.

        The joiner copies its successor's successor list in the same
        handshake (one request/response pair): a freshly joined node whose
        *only* known successor crashes before the first successor-list copy
        tick would otherwise be stranded forever with an empty list.
        """
        if node_id in self.ring.nodes_by_id:
            raise ValueError(f"identifier {node_id:#x} already on the ring")
        node = ChordNode(node_id, self.ring.m, name=name, host=host)
        owner, _ = self.local_lookup(bootstrap, node_id)
        if owner is not None:
            if self._control_message(node, owner) and self._control_message(owner, node):
                node.successors = self._merged_successors(node, owner)
            else:
                node.successors = [owner]
        else:
            node.successors = [node]
        node.predecessor = None
        node.fingers = []
        node.invalidate_routing()
        # register in the ring's membership (oracle views used for verification)
        self.ring.nodes_by_id[node.id] = node
        import bisect

        self.ring._sorted_ids.insert(bisect.bisect_left(self.ring._sorted_ids, node.id), node.id)
        self.stats.joins += 1
        if self._m_churn is not None:
            self._m_churn.inc(("join",))
        if self._running:
            self._schedule_node(node)
        return node

    def bulk_join(
        self,
        node_ids: list[int],
        bootstrap: ChordNode,
        hosts: list[int] | None = None,
        names: list[str] | None = None,
    ) -> list[ChordNode]:
        """Batched join: admit many nodes with one membership splice.

        Each joiner still pays its protocol dues — one request/response
        handshake with its successor (counted as control traffic, exactly as
        :meth:`join` counts it) and a joins-counter tick — but the ring
        membership is merged with a single sort instead of one
        bisect-insert-plus-lookup per node, and each joiner's successor list
        is seeded from the post-splice membership (the state a joiner ends
        up with after its first successor-list copy).  Fingers start empty
        and converge through the normal maintenance timers, as with
        :meth:`join`.
        """
        if bootstrap.id not in self.ring.nodes_by_id:
            raise ValueError("bootstrap node is not on the ring")
        nodes = self.ring.bulk_add_nodes(node_ids, hosts=hosts, names=names, rebuild=False)
        members = self.ring.nodes()
        pos_of = {node.id: pos for pos, node in enumerate(members)}
        n = len(members)
        r = min(self.ring.successor_list_len, n - 1) if n > 1 else 0
        for node in nodes:
            pos = pos_of[node.id]
            node.successors = (
                [members[(pos + 1 + j) % n] for j in range(r)] or [node]
            )
            node.predecessor = None
            node.fingers = []
            node.invalidate_routing()
            succ = node.successor
            if succ is not node:
                self._control_message(node, succ)
                self._control_message(succ, node)
            self.stats.joins += 1
            if self._m_churn is not None:
                self._m_churn.inc(("join",))
            if self._running:
                self._schedule_node(node)
        return nodes

    def leave(self, node: ChordNode, graceful: bool = True) -> None:
        """Departure: graceful leaves hand pointers over; crashes just die.

        Idempotent: leaving a node that already left is a no-op (a scheduled
        departure may race with an earlier crash of the same node).
        """
        if node.id not in self.ring.nodes_by_id or self.ring.nodes_by_id[node.id] is not node:
            return
        node.alive = False
        if graceful:
            succ = self._first_live_successor(node)
            if succ is not None and node.predecessor is not None and node.predecessor.alive:
                self._control_message(node, succ)
                self._control_message(node, node.predecessor)
                pred = node.predecessor
                pred.successors.insert(0, succ)
                del pred.successors[self.ring.successor_list_len :]
                pred.invalidate_routing()
                if succ.predecessor is node:
                    succ.predecessor = pred
            self.stats.leaves += 1
            if self._m_churn is not None:
                self._m_churn.inc(("leave",))
        else:
            self.stats.crashes += 1
            if self._m_churn is not None:
                self._m_churn.inc(("crash",))
        del self.ring.nodes_by_id[node.id]
        import bisect

        idx = bisect.bisect_left(self.ring._sorted_ids, node.id)
        del self.ring._sorted_ids[idx]

    # -- verification ------------------------------------------------------------------------

    def ring_consistent(self) -> bool:
        """Every live node's immediate successor matches the oracle ring."""
        nodes = self.ring.nodes()
        n = len(nodes)
        if n <= 1:
            return True
        for pos, node in enumerate(nodes):
            expected = nodes[(pos + 1) % n]
            succ = self._first_live_successor(node)
            if succ is not expected:
                return False
        return True

    def predecessors_consistent(self) -> bool:
        """Every live node's predecessor pointer matches the oracle ring.

        Weaker than :meth:`ring_consistent` right after churn (predecessors
        repair one ``notify`` later than successors), but both must hold at
        convergence; the invariant checker asserts them together.
        """
        nodes = self.ring.nodes()
        n = len(nodes)
        if n <= 1:
            return True
        for pos, node in enumerate(nodes):
            pred = node.predecessor
            if pred is None or not pred.alive or pred is not nodes[(pos - 1) % n]:
                return False
        return True

    def finger_accuracy(self) -> float:
        """Fraction of finger entries matching the oracle successor of their
        target (1.0 = fully converged)."""
        good = 0
        total = 0
        two_m = 1 << self.ring.m
        for node in self.ring.nodes():
            for i, f in enumerate(node.fingers):
                total += 1
                if f is self.ring.successor_of((node.id + (1 << i)) % two_m):
                    good += 1
        return good / total if total else 1.0
