"""A Pastry DHT substrate (Rowstron & Druschel [17]).

The paper notes its techniques "are also applicable to other DHTs such as
Pastry and Tapestry".  This module supplies the substrate half of that
claim: prefix-digit routing with leaf sets and proximity-aware routing
tables, so lookups and entry placement can run on Pastry and be compared
against Chord/Chord-PNS (``bench_ablation_dht_substrates.py``).  Porting the
*range-query* embedded-tree algorithms (which exploit Chord's
successor/predecessor geometry) is intentionally out of scope — the paper
never specifies that mapping.

Identifiers are ``m``-bit integers viewed as ``m/b`` digits of base ``2^b``
(Pastry's default ``b = 4`` → hex digits).  A key is owned by the
*numerically closest* node on the (cyclic) identifier space.  Routing:

1. if the key's owner candidate lies within the leaf set (or is this node),
   deliver to the numerically closest member;
2. otherwise forward to the routing-table entry matching one more digit of
   the key than this node does;
3. otherwise (empty table cell) forward to any known node at least as good
   in prefix length and numerically closer — Pastry's rare-case rule.
"""

from __future__ import annotations

import numpy as np

from repro.dht.hashing import node_id
from repro.sim.network import LatencyModel
from repro.util.rng import as_rng

__all__ = ["PastryNode", "PastryRing", "cyclic_distance"]


def cyclic_distance(a: int, b: int, m: int) -> int:
    """min(|a-b|, 2^m - |a-b|): numeric closeness on the wrapped id space."""
    d = abs(a - b) % (1 << m)
    return min(d, (1 << m) - d)


class PastryNode:
    """One Pastry node: digit-indexed routing table + leaf set."""

    __slots__ = (
        "id", "name", "host", "m", "b", "routing_table", "leaf_set",
        "cw_span", "ccw_span",
    )

    def __init__(self, node_id_: int, m: int, b: int, name: str = "", host: int = 0) -> None:
        self.id = int(node_id_)
        self.m = m
        self.b = b
        self.name = name or f"pastry-{node_id_:x}"
        self.host = host
        #: routing_table[row][col] — row = shared-digit count, col = digit value
        self.routing_table: list[list[PastryNode | None]] = []
        #: numerically nearest neighbours, both directions, merged
        self.leaf_set: list[PastryNode] = []
        #: ring distance to the furthest leaf clockwise / counter-clockwise
        self.cw_span: int = 0
        self.ccw_span: int = 0

    def __repr__(self) -> str:
        return f"PastryNode({self.name}, id={self.id:#x})"

    def digit(self, position: int) -> int:
        """Digit ``position`` (0 = most significant) of this node's id."""
        n_digits = self.m // self.b
        shift = (n_digits - 1 - position) * self.b
        return (self.id >> shift) & ((1 << self.b) - 1)


def _key_digit(key: int, position: int, m: int, b: int) -> int:
    n_digits = m // b
    shift = (n_digits - 1 - position) * b
    return (key >> shift) & ((1 << b) - 1)


def _shared_digits(a: int, b_: int, m: int, b: int) -> int:
    n_digits = m // b
    for i in range(n_digits):
        if _key_digit(a, i, m, b) != _key_digit(b_, i, m, b):
            return i
    return n_digits


class PastryRing:
    """Global view of a Pastry overlay, built structurally (steady state).

    Parameters
    ----------
    m:
        Identifier bits; must be a multiple of ``b``.
    b:
        Digit width (default 4 → hexadecimal digits, Pastry's default).
    leaf_set_size:
        Total leaf-set size ``L`` (``L/2`` on each side; default 16).
    latency:
        Optional latency model; when given, routing-table cells hold the
        *physically closest* candidate (Pastry's proximity heuristic).
    """

    def __init__(
        self,
        m: int = 64,
        b: int = 4,
        leaf_set_size: int = 16,
        latency: LatencyModel | None = None,
    ) -> None:
        if m % b != 0:
            raise ValueError(f"m={m} must be a multiple of the digit width b={b}")
        self.m = m
        self.b = b
        self.leaf_set_size = leaf_set_size
        self.latency = latency
        self.nodes_by_id: dict[int, PastryNode] = {}
        self._sorted_ids: list[int] = []

    def __len__(self) -> int:
        return len(self.nodes_by_id)

    def nodes(self) -> list[PastryNode]:
        return [self.nodes_by_id[i] for i in self._sorted_ids]

    @classmethod
    def build(
        cls,
        n_nodes: int,
        m: int = 64,
        b: int = 4,
        seed: int | np.random.Generator | None = 0,
        latency: LatencyModel | None = None,
        leaf_set_size: int = 16,
    ) -> PastryRing:
        """Construct a converged ring of ``n_nodes`` (SHA-1 node ids)."""
        rng = as_rng(seed)
        ring = cls(m=m, b=b, leaf_set_size=leaf_set_size, latency=latency)
        seen: set[int] = set()
        i = salt = 0
        while len(ring.nodes_by_id) < n_nodes:
            nid = node_id(f"pastry-{i}-{salt}", m)
            if nid in seen:
                salt += 1
                continue
            seen.add(nid)
            host = int(rng.integers(0, latency.n_hosts)) if latency is not None else i
            ring.nodes_by_id[nid] = PastryNode(nid, m, b, name=f"pastry-{i}", host=host)
            i += 1
        ring._sorted_ids = sorted(ring.nodes_by_id)
        ring.rebuild_tables()
        return ring

    # -- oracle ---------------------------------------------------------------

    def owner_of(self, key: int) -> PastryNode:
        """The numerically closest node to ``key`` (ties to the lower id)."""
        import bisect

        ids = self._sorted_ids
        if not ids:
            raise RuntimeError("empty ring")
        pos = bisect.bisect_left(ids, key % (1 << self.m))
        candidates = {ids[pos % len(ids)], ids[(pos - 1) % len(ids)]}
        best = min(
            candidates,
            key=lambda nid: (cyclic_distance(nid, key, self.m), nid),
        )
        return self.nodes_by_id[best]

    # -- construction ------------------------------------------------------------

    def rebuild_tables(self) -> None:
        """Fill every node's leaf set and routing table from the membership."""
        ids = self._sorted_ids
        n = len(ids)
        nodes = self.nodes()
        half = min(self.leaf_set_size // 2, max(n - 1, 0))
        n_digits = self.m // self.b
        base = 1 << self.b
        # group membership by digit prefix for efficient candidate lookup
        two_m = 1 << self.m
        for pos, node in enumerate(nodes):
            node.leaf_set = [
                nodes[(pos + off) % n]
                for off in list(range(1, half + 1)) + list(range(-half, 0))
                if n > 1
            ]
            if n > 1 and half > 0:
                node.cw_span = (nodes[(pos + half) % n].id - node.id) % two_m
                node.ccw_span = (node.id - nodes[(pos - half) % n].id) % two_m
            else:
                node.cw_span = node.ccw_span = 0
            node.routing_table = [[None] * base for _ in range(n_digits)]
        # routing tables: for every (node, row, digit) pick a candidate that
        # shares `row` digits and has `digit` at position row.
        for node in nodes:
            for other in nodes:
                if other is node:
                    continue
                row = _shared_digits(node.id, other.id, self.m, self.b)
                if row == n_digits:
                    continue
                col = other.digit(row)
                cur = node.routing_table[row][col]
                if cur is None:
                    node.routing_table[row][col] = other
                elif self.latency is not None:
                    if self.latency.latency(node.host, other.host) < self.latency.latency(
                        node.host, cur.host
                    ):
                        node.routing_table[row][col] = other

    # -- routing ------------------------------------------------------------------

    def route_step(self, node: PastryNode, key: int) -> PastryNode | None:
        """One Pastry forwarding decision; ``None`` means deliver here."""
        # 1. leaf-set rule: deliver to the numerically closest of self ∪ leafs
        candidates = [node] + node.leaf_set
        closest = min(
            candidates, key=lambda x: (cyclic_distance(x.id, key, self.m), x.id)
        )
        two_m = 1 << self.m
        fwd = (key - node.id) % two_m
        bwd = (node.id - key) % two_m
        in_leaf_range = fwd <= node.cw_span or bwd <= node.ccw_span
        if in_leaf_range or len(self) <= len(candidates):
            return None if closest is node else closest
        # 2. routing-table rule: match one more digit
        row = _shared_digits(node.id, key, self.m, self.b)
        col = _key_digit(key, row, self.m, self.b)
        entry = node.routing_table[row][col]
        if entry is not None:
            return entry
        # 3. rare case: any known node with >= row shared digits, numerically closer
        my_dist = cyclic_distance(node.id, key, self.m)
        best = None
        best_dist = my_dist
        for cand in candidates[1:] + [
            c for r in node.routing_table for c in r if c is not None
        ]:
            if _shared_digits(cand.id, key, self.m, self.b) >= row:
                d = cyclic_distance(cand.id, key, self.m)
                if d < best_dist:
                    best, best_dist = cand, d
        return best

    def lookup_path(self, start: PastryNode, key: int) -> list[PastryNode]:
        """Full route from ``start`` to the key's owner."""
        path = [start]
        current = start
        for _ in range(4 * (self.m // self.b) + len(self)):
            nxt = self.route_step(current, key)
            if nxt is None:
                return path
            path.append(nxt)
            current = nxt
        raise RuntimeError(f"pastry route for {key:#x} did not converge")
