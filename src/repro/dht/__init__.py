"""Chord DHT substrate (Stoica et al. [20]) with proximity neighbour selection.

The index architecture sits on top of Chord and exploits the trees embedded
in its finger structure for query delivery; this package provides identifier
arithmetic, consistent hashing, nodes/rings with finger + successor-list
routing state, PNS finger selection [9], and greedy lookups.
"""

from repro.dht.compact import CompactChordRing
from repro.dht.hashing import hash_to_id, node_id, random_ids, rotation_offset
from repro.dht.idspace import (
    cw_distance,
    in_interval_closed_open,
    in_interval_open,
    in_interval_open_closed,
)
from repro.dht.node import ChordNode
from repro.dht.pastry import PastryNode, PastryRing
from repro.dht.ring import ChordRing
from repro.dht.stabilize import MaintenanceConfig, MaintenanceStats, StabilizationProtocol

__all__ = [
    "ChordNode",
    "ChordRing",
    "CompactChordRing",
    "PastryNode",
    "PastryRing",
    "StabilizationProtocol",
    "MaintenanceConfig",
    "MaintenanceStats",
    "hash_to_id",
    "node_id",
    "rotation_offset",
    "random_ids",
    "cw_distance",
    "in_interval_open",
    "in_interval_open_closed",
    "in_interval_closed_open",
]
