"""Table 2 — the distribution of document vector sizes.

Regenerates the synthetic AP-like corpus and reports the vector-size
distribution (min / 5th / 50th / 95th / max / mean unique terms per
document) next to the paper's Table 2, plus corpus-generation throughput.
"""

from benchmarks.conftest import BENCH_CORPUS_SCALE, run_once
from repro.datasets.documents import (
    PAPER_TABLE2,
    SyntheticCorpusConfig,
    generate_corpus,
    vector_size_stats,
)
from repro.eval.report import format_table


def test_table2_doc_vector_sizes(benchmark, save_result):
    cfg = SyntheticCorpusConfig().scaled(BENCH_CORPUS_SCALE)

    corpus = run_once(benchmark, lambda: generate_corpus(cfg, seed=0))

    stats = vector_size_stats(corpus.doc_sizes)
    rows = [[k, PAPER_TABLE2[k], round(stats[k], 1)] for k in PAPER_TABLE2]
    rows.append(["documents", 157_021, corpus.n_docs])
    rows.append(["distinct terms", 233_640, corpus.n_distinct_terms])
    rows.append(["stop words removed", 571, cfg.n_stopwords])
    save_result(
        "table2",
        format_table(
            ["statistic", "paper (AP)", "measured (synthetic)"],
            rows,
            title="Table 2 — distribution of doc vector sizes",
        ),
    )
    # Shape assertions: the calibration must stay within a tolerant band.
    assert abs(stats["50th"] - PAPER_TABLE2["50th"]) / PAPER_TABLE2["50th"] < 0.2
    assert abs(stats["mean"] - PAPER_TABLE2["mean"]) / PAPER_TABLE2["mean"] < 0.2
