"""Ablation — literal Algorithm 5 versus the fixed surrogate refinement.

DESIGN.md documents a defect in the paper's printed SurrogateRefine: when a
query rectangle still straddles partition planes between ``prefix_len + 1``
and the surrogate's first zero bit, re-prefixing with the node's 1-bits drops
the straddling slivers.  This bench quantifies the loss:

* without load balancing, node identifiers are uniform, boundary crossings
  are few, and the literal mode loses little — matching Figure 2's near-100%
  recall;
* with dynamic load balancing, migrated nodes crowd the hot key range,
  surrogate refinement happens far more often, and the literal mode's recall
  collapses — which *explains the recall drop the paper itself reports in
  Figure 3* (their implementation follows the printed pseudocode).

The fixed mode forwards the same sibling prefixes (identical message
pattern/cost) but intersects rectangles correctly; its recall is placement-
independent.
"""

from benchmarks.conftest import bench_overrides, run_once
from repro.eval.experiments import figure2_config, figure3_config
from repro.eval.report import format_table
from repro.eval.runner import build_bundle, run_scheme

RANGE_FACTORS = (0.02, 0.05, 0.10)


def test_surrogate_mode_ablation(benchmark, save_result):
    def run():
        rows = []
        for lb_label, cfgf in (("no-LB", figure2_config), ("LB", figure3_config)):
            for mode in ("fixed", "literal"):
                cfg = cfgf(
                    **bench_overrides(range_factors=RANGE_FACTORS, surrogate_mode=mode)
                )
                bundle = build_bundle(cfg)
                res = run_scheme(cfg, cfg.schemes[2], bundle)  # Kmean-5
                for row in res.rows:
                    rows.append(
                        [
                            f"{lb_label}/{mode}",
                            f"{row['range_factor'] * 100:g}%",
                            row["recall"],
                            row["hops"],
                            row["query_messages"],
                            row["total_bytes"],
                        ]
                    )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_surrogate",
        "Ablation — SurrogateRefine: literal pseudocode vs fixed variant (Kmean-5)\n"
        + format_table(
            ["setting", "range%", "recall", "hops", "messages", "bytes"], rows
        ),
    )

    by = {(r[0], r[1]): r for r in rows}
    # fixed >= literal everywhere on recall
    for lb in ("no-LB", "LB"):
        for rf in ("2%", "5%", "10%"):
            assert by[(f"{lb}/fixed", rf)][2] >= by[(f"{lb}/literal", rf)][2] - 1e-9
    # the paper-shaped effect: literal recall degrades under LB
    assert by[("LB/literal", "5%")][2] < by[("no-LB/literal", "5%")][2]
    # fixed recall is placement-independent
    assert abs(by[("LB/fixed", "5%")][2] - by[("no-LB/fixed", "5%")][2]) < 0.05
