"""Ablation — naive per-cuboid routing versus embedded-tree routing (§3.3).

The paper's strawman sends one independent Chord lookup per owner cuboid;
the proposed algorithm refines queries progressively along the trees
embedded in the DHT links, sharing paths and bundling subqueries.  This
bench measures both on the same index and workload and reports the message
and bandwidth blow-up of the naive scheme as query selectivity grows.
"""

import numpy as np

from benchmarks.conftest import BENCH_NODES, run_once
from repro.core.naive import NaiveProtocol
from repro.core.platform import IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model
from repro.sim.stats import StatsCollector

RANGE_FACTORS = (0.01, 0.05, 0.10, 0.20)
N_QUERIES = 40


def test_naive_vs_tree_routing(benchmark, save_result):
    cfg = ClusteredGaussianConfig(n_objects=5000, dim=20, n_clusters=6, deviation=10.0)
    data, centers = generate_clustered(cfg, seed=0)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    latency = king_latency_model(n_hosts=BENCH_NODES, seed=0)
    ring = ChordRing.build(BENCH_NODES, m=32, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, metric, k=5, selection="kmeans", sample_size=800, seed=1
    )
    index = platform.indexes["idx"]
    rng = np.random.default_rng(2)
    query_ids = rng.integers(0, cfg.n_objects, size=N_QUERIES)
    nodes = ring.nodes()

    def run():
        rows = []
        for rf in RANGE_FACTORS:
            radius = rf * cfg.max_distance
            per_proto = {}
            for label, proto_cls in (("tree", None), ("naive", NaiveProtocol)):
                stats = StatsCollector()
                if proto_cls is None:
                    proto, stats = platform.protocol("idx", stats=stats)
                else:
                    proto = NaiveProtocol(platform.sim, index, stats, latency=latency)
                platform.sim.reset()
                for qid, qi in enumerate(query_ids):
                    q = index.make_query(data[qi], radius, qid=qid)
                    proto.issue(q, nodes[qid % len(nodes)])
                platform.sim.run()
                per_proto[label] = stats.summary()
            t, n = per_proto["tree"], per_proto["naive"]
            rows.append(
                [
                    f"{rf * 100:g}%",
                    t["query_messages"],
                    n["query_messages"],
                    n["query_messages"] / max(t["query_messages"], 1e-9),
                    t["query_bytes"],
                    n["query_bytes"],
                    t["hops"],
                    n["hops"],
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_naive",
        "Ablation — embedded-tree routing vs naive per-cuboid Chord lookups\n"
        + format_table(
            [
                "range%",
                "tree msgs",
                "naive msgs",
                "naive/tree",
                "tree qbytes",
                "naive qbytes",
                "tree hops",
                "naive hops",
            ],
            rows,
        ),
    )
    # The paper's claim: naive costs more, and increasingly so as the query
    # selectivity (range) grows.
    ratios = [r[3] for r in rows]
    assert ratios[-1] >= 1.0
    assert max(ratios) > 1.5
