"""Ablation — static load balancing by space-mapping rotation (§3.4).

Hosts several similarly-skewed indexes on one overlay.  Without rotation
their hot key ranges coincide and the same nodes absorb every index's
hotspot; with per-index rotation offsets the hot arcs spread around the
ring.  Reports the hot-node overlap (mean pairwise Jaccard of each index's
top-5% loaded nodes) and the combined per-node load.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.loadbalance import hotspot_overlap
from repro.core.platform import IndexPlatform
from repro.dht.ring import ChordRing
from repro.eval.metrics import gini_coefficient
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_INDEXES = 4
N_NODES = 64


def _build(rotation: bool):
    rng = np.random.default_rng(3)
    latency = king_latency_model(n_hosts=N_NODES, seed=3)
    ring = ChordRing.build(N_NODES, m=32, seed=3, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    metric = EuclideanMetric(box=(0, 100), dim=8)
    center = rng.uniform(40, 60, size=(1, 8))
    for i in range(N_INDEXES):
        data = np.clip(center + rng.normal(0, 3, size=(1500, 8)), 0, 100)
        platform.create_index(
            f"idx{i}", data, metric, k=4, selection="greedy",
            sample_size=400, rotation=rotation, seed=3 + i,
        )
    return platform


def test_rotation_ablation(benchmark, save_result):
    def run():
        rows = []
        for rotation in (False, True):
            platform = _build(rotation)
            total = platform.load_distribution()
            rows.append(
                [
                    "rotated" if rotation else "unrotated",
                    hotspot_overlap(platform, top_fraction=0.05),
                    int(total.max()),
                    gini_coefficient(total),
                    int(np.count_nonzero(total)),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_rotation",
        f"Ablation — space-mapping rotation across {N_INDEXES} similarly-skewed indexes\n"
        + format_table(
            ["mapping", "hot-node overlap", "max total load", "gini", "loaded nodes"],
            rows,
        ),
    )
    unrot, rot = rows
    assert rot[1] < unrot[1]  # rotation decorrelates the hotspots
    assert rot[2] <= unrot[2]  # and caps the worst node's combined load
