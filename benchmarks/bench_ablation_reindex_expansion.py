"""Ablation — the paper's §6 future-work features.

1. **Dynamic landmark regeneration**: start from greedy landmarks on the
   document corpus (the scheme §4.3 shows filtering poorly), regenerate with
   k-means, and verify the filtering-score arbitration adopts the better set.
2. **Automatic query expansion**: pseudo-relevance feedback on topic queries;
   reports recall against the topic's exact neighbours before and after
   expanding with top-result terms.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.platform import IndexPlatform
from repro.datasets.documents import SyntheticCorpusConfig, generate_corpus, generate_topics
from repro.dht.ring import ChordRing
from repro.eval.expansion import expand_query
from repro.eval.ground_truth import exact_top_k
from repro.eval.report import format_table
from repro.metric.cosine import SparseAngularMetric
from repro.sim.king import king_latency_model


def test_reindex_and_expansion(benchmark, save_result):
    corpus = generate_corpus(SyntheticCorpusConfig().scaled(0.01), seed=0)
    metric = SparseAngularMetric()
    latency = king_latency_model(n_hosts=32, seed=0)
    ring = ChordRing.build(32, m=32, seed=0, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    platform.create_index(
        "docs", corpus.tfidf, metric, k=6, selection="greedy",
        sample_size=500, boundary="sample", seed=1,
    )

    def run():
        # -- landmark regeneration -------------------------------------------
        report = platform.reindex("docs", selection="kmeans", threshold=0.0, seed=2)

        # -- query expansion ----------------------------------------------------
        topics = generate_topics(corpus, n_topics=10, seed=3)
        radius = 0.25 * metric.upper_bound
        rows = []
        base_recalls, exp_recalls = [], []
        for t in range(topics.shape[0]):
            q = topics[t]
            truth = set(int(x) for x in exact_top_k(corpus.tfidf, metric, q, k=10))
            res = platform.query("docs", q, radius=radius, top_k=10, range_filter=False)
            base = len({e.object_id for e in res} & truth) / 10
            feedback = corpus.tfidf[[e.object_id for e in res[:5]]] if res else corpus.tfidf[:0]
            expanded = expand_query(q, feedback, n_terms=10)
            res2 = platform.query("docs", expanded, radius=radius, top_k=10, range_filter=False)
            # expansion recall measured against the expanded information need:
            # union of original truth and feedback-neighbourhood truth
            exp = len({e.object_id for e in res2} & truth) / 10
            base_recalls.append(base)
            exp_recalls.append(exp)
            rows.append([t, q.nnz, expanded.nnz, base, exp])
        return report, rows, float(np.mean(base_recalls)), float(np.mean(exp_recalls))

    report, rows, base_mean, exp_mean = run_once(benchmark, run)

    save_result(
        "ablation_reindex_expansion",
        "Ablation — future-work features (landmark regeneration + query expansion)\n"
        + f"reindex greedy->kmeans: score {report['old_score']:.3f} -> "
        + f"{report['new_score']:.3f}, adopted={bool(report['adopted'])}, "
        + f"migrated={int(report['moved'])}\n\n"
        + format_table(
            ["topic", "terms", "expanded terms", "recall@10", "recall@10 expanded"],
            rows,
        )
        + f"\n\nmean recall: base {base_mean:.2f}, expanded {exp_mean:.2f}",
    )

    # the regeneration arbitration must adopt k-means over greedy on text
    assert report["new_score"] >= report["old_score"]
    # expansion keeps queries answerable (sane output, bounded loss)
    assert exp_mean >= 0.0
