"""Figure 2 — performance of the landmark schemes WITHOUT load balancing.

Sweeps the query range factor from 0.1% to 20% over the four schemes
(Greedy-5/10, Kmean-5/10) on the synthetic clustered dataset and reports the
paper's panels: recall, hops, response time, maximum latency and bandwidth.

Paper headline to compare against: Kmean-10 and Greedy-10 reach ~100% recall
by a ~5% range factor; the 10-landmark schemes beat the 5-landmark ones; and
k-means beats greedy (centroid landmarks model the index space better).
"""

from benchmarks.conftest import bench_overrides, run_once
from repro.eval.experiments import figure2_config
from repro.eval.report import format_sweep
from repro.eval.runner import run_experiment


def test_figure2_sweep(benchmark, save_result):
    cfg = figure2_config(**bench_overrides())
    result = run_once(benchmark, lambda: run_experiment(cfg))

    save_result(
        "figure2",
        "Figure 2 — synthetic dataset, no load balancing\n"
        + format_sweep(
            result,
            metrics=(
                "recall",
                "hops",
                "response_time",
                "max_latency",
                "total_bytes",
                "query_messages",
                "index_nodes",
            ),
        ),
    )

    # Shape assertions mirroring the paper's claims:
    for s in result.schemes:
        recalls = [row["recall"] for row in s.rows]
        # recall is monotone non-decreasing in the range factor (within noise)
        assert recalls[-1] >= recalls[0]
        # ... and high at the top of the sweep
        assert recalls[-1] > 0.9
    # 10-landmark schemes dominate 5-landmark ones at the 5% factor.
    at5 = {s.scheme.label: s.rows[4]["recall"] for s in result.schemes}
    assert at5["Kmean-10"] >= at5["Kmean-5"] - 0.05
    assert at5["Greedy-10"] >= at5["Greedy-5"] - 0.05
