"""Ablation — maintenance cost and the §3.3 piggybacking claim.

"The maintenance messages for the DHT links can be piggybacked onto the
query delivery messages, so as to reduce the maintenance cost."

Runs the Chord maintenance loop (stabilize / fix-fingers / successor lists)
under a live query workload with churn, with and without piggybacking, and
reports control bytes, the fraction of control messages that rode along with
query traffic, and post-churn convergence.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.platform import IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.dht.stabilize import MaintenanceConfig, StabilizationProtocol
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_NODES = 48
DURATION = 1200.0


def _run_setting(piggyback: bool, seed: int = 0):
    cfg = ClusteredGaussianConfig(n_objects=3000, dim=12, n_clusters=5, deviation=8.0)
    data, _ = generate_clustered(cfg, seed=seed)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    latency = king_latency_model(n_hosts=N_NODES + 8, seed=seed)
    ring = ChordRing.build(N_NODES, m=32, seed=seed, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    platform.create_index("idx", data, metric, k=4, selection="kmeans", seed=seed)
    index = platform.indexes["idx"]

    mcfg = MaintenanceConfig(piggyback=piggyback, piggyback_window=30.0)
    maint = StabilizationProtocol(ring, platform.sim, config=mcfg, seed=seed)
    proto, stats = platform.protocol("idx", maintenance=maint)

    # live query workload: one query every ~10 s
    rng = np.random.default_rng(seed + 1)
    nodes = ring.nodes()
    t = 0.0
    qid = 0
    while t < DURATION:
        qi = int(rng.integers(0, cfg.n_objects))
        node = nodes[int(rng.integers(0, len(nodes)))]
        proto.issue(
            index.make_query(data[qi], 0.05 * cfg.max_distance, qid=qid), node, at_time=t
        )
        qid += 1
        t += float(rng.exponential(10.0))

    # churn: a couple of crashes and a join mid-run
    maint.start(duration=DURATION)
    victims = [nodes[7], nodes[23]]
    platform.sim.schedule_at(300.0, maint.leave, victims[0], False)
    platform.sim.schedule_at(600.0, maint.leave, victims[1], False)
    platform.sim.schedule_at(
        800.0, maint.join, 0xABCDEF01 % (1 << 32), nodes[0], "joiner", N_NODES
    )
    platform.sim.run(until=DURATION)
    return maint


def test_maintenance_piggybacking(benchmark, save_result):
    def run():
        rows = []
        outcomes = {}
        for piggyback in (False, True):
            maint = _run_setting(piggyback)
            s = maint.stats
            rows.append(
                [
                    "piggyback" if piggyback else "standalone",
                    s.messages,
                    s.bytes,
                    s.piggybacked,
                    s.bytes_saved,
                    f"{s.piggybacked / max(s.messages, 1):.0%}",
                    maint.ring_consistent(),
                ]
            )
            outcomes[piggyback] = s
        return rows, outcomes

    rows, outcomes = run_once(benchmark, run)
    save_result(
        "ablation_maintenance",
        "Ablation — maintenance traffic with/without piggybacking (§3.3)\n"
        f"{N_NODES} nodes, {DURATION:.0f}s, 2 crashes + 1 join, live query workload\n"
        + format_table(
            ["mode", "ctrl msgs", "ctrl bytes", "piggybacked", "bytes saved", "ratio", "ring ok"],
            rows,
        ),
    )
    assert outcomes[True].bytes < outcomes[False].bytes
    assert outcomes[True].piggybacked > 0
    # churn must have been repaired in both settings
    assert all(r[-1] for r in rows)
