"""Figure 3 — performance of the landmark schemes WITH dynamic load balancing.

Same sweep as Figure 2 but with dynamic load migration (δ = 0, P_l = 4 — the
paper's maximum-effect setting) applied between index construction and
querying.

Paper headline: versus Figure 2, recall dips and routing cost rises for all
schemes (migration skews node ids and deepens the embedded tree), but a high
recall is still achievable at a reasonable cost.
"""

from benchmarks.conftest import bench_overrides, run_once
from repro.eval.experiments import figure3_config
from repro.eval.report import format_sweep
from repro.eval.runner import run_experiment


def test_figure3_sweep(benchmark, save_result):
    cfg = figure3_config(**bench_overrides())
    result = run_once(benchmark, lambda: run_experiment(cfg))

    lb_lines = []
    for s in result.schemes:
        r = s.lb_report
        lb_lines.append(
            f"  {s.scheme.label:10s}: {r.moves} moves / {r.rounds} rounds, "
            f"max load {r.initial_max_load} -> {r.final_max_load}"
        )
    save_result(
        "figure3",
        "Figure 3 — synthetic dataset, with dynamic load balancing (delta=0, P_l=4)\n"
        + format_sweep(
            result,
            metrics=(
                "recall",
                "hops",
                "response_time",
                "max_latency",
                "total_bytes",
                "query_messages",
                "index_nodes",
            ),
        )
        + "\n\n[load balancing]\n"
        + "\n".join(lb_lines),
    )

    for s in result.schemes:
        # balancing must actually have flattened the load
        assert s.lb_report.final_max_load <= s.lb_report.initial_max_load
        # recall still reaches a high value at large range factors
        assert s.rows[-1]["recall"] > 0.8
