"""Ablation — adaptive k-NN search and dynamic update cost.

1. **k-NN**: the radius-doubling loop versus a single conservatively-large
   range query.  Adaptive search touches far fewer nodes and bytes when the
   data are clustered (the common case), at the price of extra rounds.
2. **Updates**: protocol-level inserts/deletes route one entry to its owner
   per operation; cost should be the Chord lookup O(log n) hops.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.knn import knn_search
from repro.core.platform import IndexPlatform
from repro.core.updates import UpdateProtocol
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import exact_top_k
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_NODES = 48


def _platform(seed=0):
    cfg = ClusteredGaussianConfig(n_objects=4000, dim=12, n_clusters=5, deviation=6.0)
    data, _ = generate_clustered(cfg, seed=seed)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    latency = king_latency_model(n_hosts=N_NODES, seed=seed)
    ring = ChordRing.build(N_NODES, m=32, seed=seed, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    platform.create_index("idx", data, metric, k=4, selection="kmeans", seed=seed)
    return platform, data, cfg, metric


def test_knn_vs_big_range(benchmark, save_result):
    platform, data, cfg, metric = _platform()
    rng = np.random.default_rng(1)
    qids = rng.integers(0, cfg.n_objects, size=15)

    def run():
        adaptive = {"msgs": 0, "bytes": 0, "nodes": 0, "rounds": 0, "exact": 0}
        for qi in qids:
            res = knn_search(platform, "idx", data[qi], k=10, initial_radius=0.01 * cfg.max_distance)
            truth = exact_top_k(data, metric, data[qi], 10)
            assert set(res.object_ids.tolist()) == set(int(t) for t in truth)
            adaptive["msgs"] += res.query_messages
            adaptive["bytes"] += res.query_bytes + res.result_bytes
            adaptive["nodes"] += res.index_nodes
            adaptive["rounds"] += res.rounds
            adaptive["exact"] += res.exact
        big = {"msgs": 0, "bytes": 0, "nodes": 0}
        index = platform.indexes["idx"]
        for qid, qi in enumerate(qids):
            proto, stats = platform.protocol("idx", top_k=10)
            platform.sim.reset()
            # conservative radius: half the space diameter guarantees k hits
            proto.issue(
                index.make_query(data[qi], 0.5 * cfg.max_distance, qid=0),
                platform.ring.nodes()[qid % N_NODES],
            )
            platform.sim.run()
            st = stats.for_query(0)
            big["msgs"] += st.query_messages
            big["bytes"] += st.total_bytes
            big["nodes"] += len(st.index_nodes)
        n = len(qids)
        rows = [
            ["adaptive kNN", adaptive["msgs"] / n, adaptive["bytes"] / n,
             adaptive["nodes"] / n, adaptive["rounds"] / n],
            ["one big range", big["msgs"] / n, big["bytes"] / n, big["nodes"] / n, 1.0],
        ]
        return rows, adaptive

    rows, adaptive = run_once(benchmark, run)
    save_result(
        "ablation_knn",
        "Ablation — adaptive kNN (radius doubling) vs one conservative range query\n"
        + format_table(["strategy", "msgs/query", "bytes/query", "nodes/query", "rounds"], rows),
    )
    assert adaptive["exact"] == len(qids)
    assert rows[0][3] <= rows[1][3]  # adaptive touches no more nodes


def test_update_cost(benchmark, save_result):
    platform, data, cfg, metric = _platform(seed=2)
    up = UpdateProtocol(platform.indexes["idx"])
    rng = np.random.default_rng(3)
    ids = rng.choice(cfg.n_objects, size=50, replace=False)

    def run():
        for oid in ids:
            up.delete(int(oid))
        for oid in ids:
            up.insert(int(oid))
        return up.stats

    stats = run_once(benchmark, run)
    save_result(
        "ablation_updates",
        "Ablation — dynamic update cost (50 deletes + 50 inserts)\n"
        + format_table(
            ["ops", "messages", "bytes", "mean hops"],
            [[stats.inserts + stats.deletes, stats.messages, stats.bytes,
              round(stats.mean_hops, 2)]],
        )
        + f"\n(log2(n_nodes) = {np.log2(N_NODES):.1f} — mean hops should be comparable)",
    )
    assert stats.inserts == 50 and stats.deletes == 50
    assert stats.mean_hops <= 3 * np.log2(N_NODES)
    # the index is intact after churn of entries
    assert platform.indexes["idx"].total_entries() == cfg.n_objects
