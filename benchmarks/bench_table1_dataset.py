"""Table 1 — parameters for synthetic dataset generation.

Regenerates the paper's synthetic workload (100-d, range [0,100], 10
clusters, deviation 20) and reports the realised parameters next to Table 1,
plus generation throughput at bench scale.
"""

import numpy as np

from benchmarks.conftest import BENCH_OBJECTS, run_once
from repro.datasets.synthetic import generate_clustered, paper_table1_config
from repro.eval.report import format_table


def test_table1_dataset_generation(benchmark, save_result):
    cfg = paper_table1_config(n_objects=BENCH_OBJECTS)

    def build():
        return generate_clustered(cfg, seed=0)

    data, centers = run_once(benchmark, build)

    # Validate the realised dataset against the declared parameters.
    assert data.shape == (BENCH_OBJECTS, 100)
    assert data.min() >= 0.0 and data.max() <= 100.0
    d2 = ((data[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    assign = d2.argmin(axis=1)
    # per-coordinate std within clusters ~ deviation (clipping shaves a bit)
    resid = data - centers[assign]
    realised_dev = resid.std()

    rows = [
        ["Dimension", 100, data.shape[1]],
        ["Range of each dimension", "[0..100]", f"[{data.min():.0f}..{data.max():.0f}]"],
        ["Number of clusters", 10, len(np.unique(assign))],
        ["Deviation of each cluster", 20, round(float(realised_dev), 1)],
        ["Objects", "1e5 (paper) / bench", data.shape[0]],
        ["Max theoretical distance", 1000, round(cfg.max_distance)],
    ]
    save_result(
        "table1",
        format_table(["parameter", "paper", "measured"], rows, title="Table 1 — dataset generation"),
    )
    assert abs(realised_dev - 20.0) < 4.0
