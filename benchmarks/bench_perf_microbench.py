"""Microbenchmarks of the vectorised hot paths.

These are classic pytest-benchmark measurements (many rounds, statistics) of
the kernels the experiments spend their time in — the profile-first rule of
the HPC guides this repo follows.  They also guard against performance
regressions: the assertions encode the throughput floors the experiment
runtimes were budgeted with.
"""

import numpy as np
import pytest

from repro.core.index_space import IndexSpaceBounds
from repro.core.landmarks import greedy_selection
from repro.core.lifecycle import RetryPolicy
from repro.core.lph import lp_hash_batch
from repro.core.platform import IndexPlatform
from repro.core.sfc import morton_encode, quantize
from repro.core.storage import Shard
from repro.datasets.queries import QueryWorkload
from repro.dht.ring import ChordRing
from repro.metric.vector import EuclideanMetric
from repro.sim.network import ConstantLatency

RNG = np.random.default_rng(0)


class TestProjectionKernels:
    def test_euclidean_one_to_many_100d(self, benchmark):
        """Landmark projection: one landmark against 1e5 100-d objects."""
        metric = EuclideanMetric()
        x = RNG.uniform(0, 100, size=100)
        Y = RNG.uniform(0, 100, size=(100_000, 100))
        out = benchmark(metric.one_to_many, x, Y)
        assert out.shape == (100_000,)

    def test_greedy_selection_sample(self, benchmark):
        """Algorithm 1 on the paper's 2000-object sample, 10 landmarks."""
        sample = RNG.uniform(0, 100, size=(2000, 100))
        metric = EuclideanMetric()
        ls = benchmark(greedy_selection, sample, metric, 10, 0)
        assert ls.k == 10


class TestHashKernels:
    def test_lph_batch_m64(self, benchmark):
        """Algorithm 2 over 1e5 points, 10-d index space, 64-bit keys."""
        bounds = IndexSpaceBounds.uniform(10, 0.0, 1000.0)
        pts = RNG.uniform(0, 1000, size=(100_000, 10))
        keys = benchmark(lp_hash_batch, pts, bounds, 64)
        assert keys.dtype == np.uint64

    def test_morton_encode(self, benchmark):
        cells = RNG.integers(0, 256, size=(50_000, 4), dtype=np.int64)
        keys = benchmark(morton_encode, cells, 8)
        assert len(keys) == 50_000

    def test_quantize(self, benchmark):
        pts = RNG.uniform(0, 1000, size=(100_000, 10))
        lows, highs = np.zeros(10), np.full(10, 1000.0)
        cells = benchmark(quantize, pts, lows, highs, 8)
        assert cells.max() < 256


class TestStorageKernels:
    def _shard(self, n=20_000, k=10):
        shard = Shard(k)
        shard.add(
            RNG.integers(0, 2**63, size=n, dtype=np.uint64),
            RNG.uniform(0, 1000, size=(n, k)),
            np.arange(n),
        )
        return shard

    def test_range_search_with_key_filter(self, benchmark):
        """The query-time hot path: key slice + rectangle mask."""
        shard = self._shard()
        lows = np.full(10, 200.0)
        highs = np.full(10, 800.0)
        pos = benchmark(shard.range_search, lows, highs, 2**61, 2**62)
        assert pos.dtype == np.int64

    def test_range_search_key_filter_beats_full_scan(self):
        """The sorted-key slice must prune most of the shard for a narrow
        claim (the reason shards keep keys sorted)."""
        import timeit

        shard = self._shard(n=100_000)
        lows = np.full(10, 0.0)
        highs = np.full(10, 1000.0)
        narrow = timeit.timeit(
            lambda: shard.range_search(lows, highs, 0, 2**50), number=50
        )
        full = timeit.timeit(lambda: shard.range_search(lows, highs), number=50)
        assert narrow < full


class TestQueryRouting:
    """End-to-end query routing through the transport (the §4.1 hot loop)."""

    @pytest.fixture(scope="class")
    def routing_platform(self):
        rng = np.random.default_rng(42)
        centers = rng.uniform(0, 100, size=(4, 6))
        data = np.clip(
            centers[rng.integers(0, 4, size=5_000)] + rng.normal(0, 4, size=(5_000, 6)),
            0,
            100,
        )
        latency = ConstantLatency(64, delay=0.02)
        ring = ChordRing.build(64, m=32, seed=1, latency=latency, pns=False)
        platform = IndexPlatform(ring, latency=latency)
        platform.create_index(
            "bench", data, EuclideanMetric(box=(0, 100), dim=6),
            k=4, sample_size=1000, seed=2,
        )
        return platform, data

    def test_query_routing_throughput(self, benchmark, routing_platform):
        """50 range queries routed and resolved per round, fresh protocol
        each time (transport delivery, subquery fan-out, local solve,
        result replies — everything between issue() and quiescence)."""
        platform, data = routing_platform
        index = platform.indexes["bench"]
        nodes = platform.ring.nodes()
        queries = [index.make_query(data[i], 10.0, qid=i) for i in range(50)]

        def route_batch():
            platform.sim.reset()
            proto, stats = platform.protocol("bench")
            for i, q in enumerate(queries):
                proto.issue(q, nodes[i % len(nodes)])
            platform.sim.run()
            return stats

        stats = benchmark(route_batch)
        assert len(stats) == 50
        assert all(st.result_messages > 0 for st in stats.queries.values())

    def test_pipelined_batch_beats_serial(self, benchmark, routing_platform):
        """Batch turnaround of 50 overlapping queries: pipelined execution
        keeps every query in flight concurrently, the serial baseline drains
        them one at a time — the simulated makespan ratio is the speedup the
        lifecycle engine's future-based harvesting buys."""
        platform, data = routing_platform
        workload = QueryWorkload.build(
            data[:50], 10.0, n_nodes=len(platform.ring),
            mean_interarrival=0.01, seed=3,
        )
        policy = RetryPolicy(deadline=500.0)

        def run(pipelined):
            stats = platform.run_workload(
                "bench", workload, pipelined=pipelined, policy=policy
            )
            assert stats.state_counts() == {"complete": 50}
            done = [qs.completed_at for qs in stats.queries.values()]
            return max(done) - float(workload.arrival_times.min())

        pipelined_makespan = benchmark(run, True)
        serial_makespan = run(False)
        speedup = serial_makespan / pipelined_makespan
        benchmark.extra_info["serial_makespan_s"] = round(serial_makespan, 4)
        benchmark.extra_info["pipelined_makespan_s"] = round(pipelined_makespan, 4)
        benchmark.extra_info["makespan_speedup"] = round(speedup, 2)
        # loose floor: with ~10ms interarrivals and multi-hop query latencies
        # the serial drain must cost several times the pipelined makespan
        assert speedup >= 2.0


class TestObservabilityOverhead:
    """Observability must be free when off: the platform accepts ``obs=``
    everywhere, so the disabled path (``Observability.disabled()``, a
    NullRegistry and no recorder) has to cost the same as no ``obs`` at all
    on the query-routing hot loop."""

    N_QUERIES = 50

    def _platform(self, obs=None):
        rng = np.random.default_rng(7)
        centers = rng.uniform(0, 100, size=(4, 6))
        data = np.clip(
            centers[rng.integers(0, 4, size=3_000)] + rng.normal(0, 4, size=(3_000, 6)),
            0,
            100,
        )
        latency = ConstantLatency(48, delay=0.02)
        ring = ChordRing.build(48, m=32, seed=5, latency=latency, pns=False)
        platform = IndexPlatform(ring, latency=latency, obs=obs)
        platform.create_index(
            "bench", data, EuclideanMetric(box=(0, 100), dim=6),
            k=4, sample_size=800, seed=6,
        )
        queries = [
            platform.indexes["bench"].make_query(data[i], 10.0, qid=i)
            for i in range(self.N_QUERIES)
        ]
        return platform, queries

    @staticmethod
    def _route_batch(platform, queries):
        platform.sim.reset()
        proto, stats = platform.protocol("bench")
        nodes = platform.ring.nodes()
        for i, q in enumerate(queries):
            proto.issue(q, nodes[i % len(nodes)])
        platform.sim.run()
        assert len(stats) == len(queries)

    def test_disabled_observability_is_free(self):
        """min-of-N batch time with ``Observability.disabled()`` within 5%
        of the no-obs baseline (plus a small absolute epsilon so an idle-CI
        hiccup on a ~100ms batch can't flake the build)."""
        import timeit

        from repro.obs import Observability

        base_platform, base_queries = self._platform(obs=None)
        off_platform, off_queries = self._platform(obs=Observability.disabled())
        # warm both paths (bytecode caches, shard layouts) before timing
        self._route_batch(base_platform, base_queries)
        self._route_batch(off_platform, off_queries)
        base_times, off_times = [], []
        for _ in range(7):  # interleaved so machine drift hits both equally
            base_times.append(timeit.timeit(
                lambda: self._route_batch(base_platform, base_queries), number=1))
            off_times.append(timeit.timeit(
                lambda: self._route_batch(off_platform, off_queries), number=1))
        base, off = min(base_times), min(off_times)
        print(f"\nrouting batch: no-obs {base * 1000:.1f}ms, "
              f"disabled-obs {off * 1000:.1f}ms ({off / base:.3f}x)")
        assert off <= base * 1.05 + 1e-3, (
            f"disabled observability slowed routing: {off:.4f}s vs {base:.4f}s"
        )

    def test_enabled_metrics_overhead_bounded(self):
        """Live metrics are not free but must stay cheap: the fully
        instrumented batch may cost at most 2x the baseline (it measures
        counter bumps per message, not tracing)."""
        import timeit

        from repro.obs import Observability

        base_platform, base_queries = self._platform(obs=None)
        on_platform, on_queries = self._platform(obs=Observability(metrics=True))
        self._route_batch(base_platform, base_queries)
        self._route_batch(on_platform, on_queries)
        base_times, on_times = [], []
        for _ in range(5):
            base_times.append(timeit.timeit(
                lambda: self._route_batch(base_platform, base_queries), number=1))
            on_times.append(timeit.timeit(
                lambda: self._route_batch(on_platform, on_queries), number=1))
        base, on = min(base_times), min(on_times)
        print(f"\nrouting batch: no-obs {base * 1000:.1f}ms, "
              f"metrics-on {on * 1000:.1f}ms ({on / base:.3f}x)")
        assert on <= base * 2.0 + 1e-3


class TestRingKernels:
    def test_rebuild_tables_256_nodes(self, benchmark):
        """Structural table rebuild (the load-balancing inner loop)."""
        ring = ChordRing.build(256, m=32, seed=0)
        benchmark(ring.rebuild_tables)
        assert len(ring.nodes()[0].fingers) == 32

    def test_owners_of_keys_bulk(self, benchmark):
        ring = ChordRing.build(256, m=32, seed=0)
        keys = RNG.integers(0, 2**32, size=100_000, dtype=np.uint64)
        pos = benchmark(ring.owners_of_keys, keys)
        assert len(pos) == 100_000


class TestEventEngine:
    def test_storm_workload_throughput(self, benchmark):
        """The `repro bench` event_loop workload on the live engine."""
        from repro.bench.micro import _storm_workload
        from repro.sim.engine import Simulator

        completed = benchmark(lambda: _storm_workload(Simulator(), 2_000))
        assert completed == 2_000

    def test_compaction_prunes_cancelled_timers(self):
        """Deterministic twin of the timing section: with digests off, the
        engine compacts cancelled deadline timers out of the heap instead of
        dragging (nearly) all 8 * n_ops of them to their due times."""
        from repro.bench.micro import _storm_workload
        from repro.sim.engine import Simulator

        sim = Simulator()
        n_ops, fan_out = 5_000, 8
        _storm_workload(sim, n_ops, fan_out)
        cancelled = n_ops * fan_out
        assert sim.tombstones_skipped < cancelled * 0.05, (
            f"compaction ineffective: {sim.tombstones_skipped}/{cancelled} "
            "tombstones still popped"
        )

    def test_digest_mode_keeps_exact_tombstone_accounting(self):
        """With digests on (replay), compaction must stay off: every
        cancelled timer is popped, counted and folded into the digest."""
        from repro.bench.micro import _storm_workload
        from repro.sim.engine import Simulator

        sim = Simulator()
        sim.digest_enabled = True
        n_ops, fan_out = 500, 8
        _storm_workload(sim, n_ops, fan_out)
        assert sim.tombstones_skipped == n_ops * fan_out
        assert sim.events_processed == n_ops * (fan_out + 1)
