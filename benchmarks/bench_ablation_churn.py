"""Ablation — queries during churn: stabilisation x replication.

The paper measures queries only "after system stabilization".  This bench
asks the harder systems question: what happens to recall when nodes crash
*while* the query workload runs?

Four configurations share the same dataset, overlay and crash schedule
(4 crashes spread through a 20-minute workload of ~100 queries):

* stabilisation off / replication 1 — routes through dead nodes keep failing
  and the dead shards' entries are simply gone;
* stabilisation off / replication 2 — the data survives on successors, but
  stale routing still drops query branches;
* stabilisation on / replication 1 — routing repairs within a stabilisation
  interval, but the dead shards' entries stay lost;
* stabilisation on / replication 2 — both repair: recall recovers to ~1.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.platform import IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.dht.stabilize import MaintenanceConfig, StabilizationProtocol
from repro.eval.ground_truth import batch_exact_top_k
from repro.eval.metrics import merge_top_k, recall_at_k
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_NODES = 48
N_QUERIES = 100
DURATION = 1200.0
N_CRASHES = 4


def _run_config(stabilize: bool, replication: int, data, metric, truth, query_ids, cfg):
    latency = king_latency_model(n_hosts=N_NODES, seed=0)
    ring = ChordRing.build(N_NODES, m=32, seed=0, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, metric, k=4, selection="kmeans", replication=replication, seed=0
    )
    index = platform.indexes["idx"]
    maint = StabilizationProtocol(
        ring, platform.sim,
        config=MaintenanceConfig(stabilize_interval=15.0, fix_finger_interval=10.0),
        seed=0,
    )
    proto, stats = platform.protocol("idx", top_k=10, range_filter=False)
    nodes = list(ring.nodes())
    rng = np.random.default_rng(1)
    # schedule queries uniformly over the run
    times = np.sort(rng.uniform(0, DURATION, size=N_QUERIES))
    for qid, (qi, t) in enumerate(zip(query_ids, times)):
        src = nodes[int(rng.integers(0, len(nodes)))]
        proto.issue(
            index.make_query(data[qi], 0.08 * cfg.max_distance, qid=qid), src, at_time=float(t)
        )
    # schedule crashes of loaded, pairwise non-adjacent nodes at T/5..4T/5
    # (crashing a primary AND its replica-holding successor would be data
    # loss by design; the replication ablation covers that worst case)
    victims: "list" = []
    for cand in sorted(nodes, key=lambda n: -index.shards[n].load):
        if any(
            cand is v.successor or v is cand.successor for v in victims
        ):
            continue
        victims.append(cand)
        if len(victims) == N_CRASHES:
            break
    for i, victim in enumerate(victims):
        platform.sim.schedule_at(DURATION * (i + 1) / (N_CRASHES + 1), maint.leave, victim, False)
    if stabilize:
        maint.start(duration=DURATION)
    platform.sim.run(until=DURATION + 60.0)
    recalls = []
    drops = 0
    for qid in range(N_QUERIES):
        st = stats.for_query(qid)
        recalls.append(recall_at_k(truth[qid], merge_top_k(st.entries, 10)))
        drops += st.dropped_messages
    return float(np.mean(recalls)), drops


def test_queries_under_churn(benchmark, save_result):
    cfg = ClusteredGaussianConfig(n_objects=4000, dim=12, n_clusters=5, deviation=8.0)
    data, _ = generate_clustered(cfg, seed=0)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    rng = np.random.default_rng(2)
    query_ids = rng.integers(0, cfg.n_objects, size=N_QUERIES)
    truth = batch_exact_top_k(data, metric, data[query_ids], k=10)

    def run():
        rows = []
        for stabilize in (False, True):
            for repl in (1, 2):
                recall, drops = _run_config(
                    stabilize, repl, data, metric, truth, query_ids, cfg
                )
                rows.append(
                    ["on" if stabilize else "off", repl, round(recall, 3), drops]
                )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_churn",
        f"Ablation — recall during churn ({N_CRASHES} crashes of loaded nodes "
        f"over a {DURATION:.0f}s workload, {N_NODES} nodes)\n"
        + format_table(
            ["stabilisation", "replication", "mean recall", "dropped msgs"], rows
        ),
    )
    by = {(r[0], r[1]): r[2] for r in rows}
    # full repair (stabilisation + replication) dominates everything else
    assert by[("on", 2)] >= by[("off", 1)]
    assert by[("on", 2)] >= by[("on", 1)] - 1e-9
    assert by[("on", 2)] >= by[("off", 2)] - 1e-9
    assert by[("on", 2)] > 0.8
