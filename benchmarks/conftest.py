"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables/figures at *bench
scale* (reduced node/object/query counts; see DESIGN.md) and writes the
rendered table to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from the artefacts.  Timings are collected by pytest-benchmark with
a single round — the figures are minutes-long simulations, not microbenches.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Bench-scale knobs shared by the figure benchmarks.  Chosen so the whole
#: suite completes in tens of minutes of pure Python while preserving the
#: paper's qualitative shape.  Override via environment for bigger runs,
#: e.g. ``REPRO_BENCH_NODES=256 REPRO_BENCH_OBJECTS=100000``.
BENCH_NODES = int(os.environ.get("REPRO_BENCH_NODES", "64"))
BENCH_OBJECTS = int(os.environ.get("REPRO_BENCH_OBJECTS", "10000"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "100"))
BENCH_CORPUS_SCALE = float(os.environ.get("REPRO_BENCH_CORPUS_SCALE", "0.05"))


def bench_overrides(**extra):
    """Figure-config overrides for bench scale."""
    out = dict(
        n_nodes=BENCH_NODES,
        n_objects=BENCH_OBJECTS,
        n_queries=BENCH_QUERIES,
        corpus_scale=BENCH_CORPUS_SCALE,
    )
    out.update(extra)
    return out


@pytest.fixture
def save_result():
    """Write a rendered results table to benchmarks/results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def save_metrics():
    """Dump a metrics-registry snapshot to benchmarks/results/<name>_metrics.jsonl
    (render it with ``repro metrics <path>``)."""

    def _save(name: str, registry) -> "Path":
        from repro.obs.export import write_jsonl

        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}_metrics.jsonl"
        write_jsonl(registry.snapshot(), path)
        print(f"[metrics snapshot saved to {path}]")
        return path

    return _save


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
