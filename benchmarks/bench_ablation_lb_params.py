"""Ablation — the dynamic load balancing trade-off knobs δ and P_l (§3.4).

"The average value of δ and P_l control the tradeoff between the overhead
and quality of the load balancing."  Sweeps both knobs on a skewed index and
reports moves, probe traffic, final balance, and the query-routing cost the
paper says balancing degrades (skewed node ids deepen the embedded tree).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.loadbalance import dynamic_load_migration
from repro.core.platform import IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_NODES = 48
SETTINGS = [(0.0, 4), (0.0, 1), (0.5, 4), (0.5, 1), (2.0, 4)]


def _fresh_platform():
    cfg = ClusteredGaussianConfig(n_objects=4000, dim=12, n_clusters=2, deviation=4.0)
    data, _ = generate_clustered(cfg, seed=4)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    latency = king_latency_model(n_hosts=N_NODES, seed=4)
    ring = ChordRing.build(N_NODES, m=32, seed=4, latency=latency, pns=False)
    platform = IndexPlatform(ring)
    platform.create_index(
        "idx", data, metric, k=4, selection="greedy", sample_size=500, seed=4
    )
    return platform, data, cfg


def _query_cost(platform, data, cfg):
    """Mean hops over a small probe workload after balancing."""
    proto, stats = platform.protocol("idx")
    index = platform.indexes["idx"]
    nodes = platform.ring.nodes()
    rng = np.random.default_rng(5)
    for qid in range(25):
        qi = int(rng.integers(0, len(data)))
        proto.issue(
            index.make_query(data[qi], 0.05 * cfg.max_distance, qid=qid),
            nodes[qid % len(nodes)],
        )
    platform.sim.run()
    return stats.mean_hops()


def test_lb_parameter_sweep(benchmark, save_result):
    def run():
        rows = []
        # baseline without any balancing
        platform, data, cfg = _fresh_platform()
        loads = platform.load_distribution()
        rows.append(
            ["(off)", "-", 0, 0, int(loads.max()), _query_cost(platform, data, cfg)]
        )
        for delta, pl in SETTINGS:
            platform, data, cfg = _fresh_platform()
            report = dynamic_load_migration(
                platform, delta=delta, probe_level=pl, seed=0
            )
            rows.append(
                [
                    f"d={delta:g}",
                    f"P_l={pl}",
                    report.moves,
                    report.probes,
                    report.final_max_load,
                    _query_cost(platform, data, cfg),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_lb_params",
        "Ablation — dynamic load balancing knobs (delta, P_l)\n"
        + format_table(
            ["delta", "probe level", "moves", "probes", "final max load", "query hops"],
            rows,
        ),
    )
    base = rows[0]
    aggressive = rows[1]  # delta=0, P_l=4
    # balancing flattens load...
    assert aggressive[4] < base[4]
    # ...but costs query-routing hops (the paper's stated trade-off)
    assert aggressive[5] >= base[5]
    # larger delta tolerates more imbalance with fewer moves
    lazy = rows[5]  # delta=2.0
    assert lazy[2] <= aggressive[2]
