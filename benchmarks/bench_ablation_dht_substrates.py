"""Ablation — DHT substrates: Chord vs Chord-PNS vs Pastry.

The paper builds on Chord-PNS and asserts its techniques "are also
applicable to other DHTs such as Pastry and Tapestry".  This bench compares
the substrates' lookup economics on the same membership and latency network:
mean hops, mean lookup latency, and routing-state size per node — the
quantities that determine what the index architecture would pay on each.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.dht.pastry import PastryRing
from repro.dht.ring import ChordRing
from repro.eval.report import format_table
from repro.sim.king import king_latency_model

N_NODES = 96
M = 32
N_LOOKUPS = 300


def _chord_state(ring):
    sizes = []
    for node in ring.nodes():
        sizes.append(len({t.id for t in node.routing_table()}) - 1)
    return float(np.mean(sizes))


def _pastry_state(ring):
    sizes = []
    for node in ring.nodes():
        entries = {e.id for row in node.routing_table for e in row if e is not None}
        entries |= {x.id for x in node.leaf_set}
        sizes.append(len(entries))
    return float(np.mean(sizes))


def test_dht_substrate_comparison(benchmark, save_result):
    latency = king_latency_model(n_hosts=N_NODES, seed=0)
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**M, size=N_LOOKUPS)
    starts = rng.integers(0, N_NODES, size=N_LOOKUPS)

    def measure(lookup_path, nodes):
        hops, lat = [], []
        for key, s in zip(keys, starts):
            path = lookup_path(nodes[int(s)], int(key))
            hops.append(len(path) - 1)
            lat.append(
                sum(
                    latency.latency(a.host, b.host)
                    for a, b in zip(path[:-1], path[1:])
                )
            )
        return float(np.mean(hops)), float(np.mean(lat))

    def run():
        rows = []
        chord = ChordRing.build(N_NODES, m=M, seed=0, latency=latency, pns=False)
        h, l = measure(chord.lookup_path, chord.nodes())
        rows.append(["Chord", h, l, _chord_state(chord)])
        pns = ChordRing.build(N_NODES, m=M, seed=0, latency=latency, pns=True)
        h, l = measure(pns.lookup_path, pns.nodes())
        rows.append(["Chord-PNS", h, l, _chord_state(pns)])
        pastry = PastryRing.build(N_NODES, m=M, b=4, seed=0, latency=latency)
        h, l = measure(pastry.lookup_path, pastry.nodes())
        rows.append(["Pastry (b=4)", h, l, _pastry_state(pastry)])
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_dht_substrates",
        f"Ablation — DHT substrates on the same {N_NODES}-host King-like network\n"
        + format_table(
            ["substrate", "mean hops", "mean lookup latency (s)", "routing entries/node"],
            rows,
        ),
    )
    chord, pns, pastry = rows
    assert pns[2] <= chord[2] * 1.02  # PNS reduces (or matches) latency
    assert pastry[1] <= chord[1]  # base-16 digits shorten the path
