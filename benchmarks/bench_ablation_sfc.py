"""Ablation — the paper's k-d mapping + embedded-tree routing versus
SCRAP-style space-filling-curve interval routing (§5 related work).

Three systems answer the same workload on the same overlay and index space:

* **LPH + embedded tree** — the paper's architecture (Algorithms 2–5);
* **Morton intervals** — the identical 1-d ordering (Algorithm 2 *is*
  Z-order; verified bit-for-bit in the tests), but queried SCRAP-style as
  per-interval Chord lookups + successor walks;
* **Hilbert intervals** — SCRAP's actual curve, which fragments rectangles
  into fewer intervals at the cost of a different placement.

This isolates the contribution of the *routing* (shared prefixes on the
embedded tree) from the *mapping* (curve choice).
"""

import numpy as np

from benchmarks.conftest import BENCH_NODES, run_once
from repro.core.platform import IndexPlatform
from repro.core.scrap import SfcIndex, SfcRangeProtocol
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model
from repro.sim.stats import StatsCollector

RANGE_FACTORS = (0.02, 0.05, 0.10)
N_QUERIES = 30


def test_sfc_vs_embedded_tree(benchmark, save_result):
    cfg = ClusteredGaussianConfig(n_objects=5000, dim=16, n_clusters=6, deviation=8.0)
    data, _ = generate_clustered(cfg, seed=0)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    latency = king_latency_model(n_hosts=BENCH_NODES, seed=0)
    ring = ChordRing.build(BENCH_NODES, m=32, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    platform.create_index("idx", data, metric, k=4, selection="kmeans", seed=1)
    base = platform.indexes["idx"]
    morton = SfcIndex(base, curve="morton", p=8)
    hilbert = SfcIndex(base, curve="hilbert", p=8)
    rng = np.random.default_rng(2)
    qids = rng.integers(0, cfg.n_objects, size=N_QUERIES)
    nodes = ring.nodes()

    def measure(proto_factory):
        stats = StatsCollector()
        proto = proto_factory(stats)
        platform.sim.reset()
        for i, qi in enumerate(qids):
            q = base.make_query(data[qi], RADIUS, qid=i)
            proto.issue(q, nodes[i % len(nodes)])
        platform.sim.run()
        s = stats.summary()
        return [s["query_messages"], s["query_bytes"], s["index_nodes"], s["max_latency"]]

    def run():
        rows = []
        for rf in RANGE_FACTORS:
            global RADIUS
            RADIUS = rf * cfg.max_distance
            tree = measure(
                lambda st: platform.protocol("idx", stats=st, top_k=10)[0]
            )
            mor = measure(
                lambda st: SfcRangeProtocol(
                    platform.sim, morton, st, latency=latency, top_k=10
                )
            )
            hil = measure(
                lambda st: SfcRangeProtocol(
                    platform.sim, hilbert, st, latency=latency, top_k=10
                )
            )
            for label, row in (("tree", tree), ("morton-sfc", mor), ("hilbert-sfc", hil)):
                rows.append([f"{rf*100:g}%", label] + [round(v, 2) for v in row])
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_sfc",
        "Ablation — embedded-tree routing vs SCRAP-style SFC interval routing\n"
        + format_table(
            ["range%", "system", "msgs/query", "qbytes/query", "nodes/query", "max latency"],
            rows,
        ),
    )
    by = {(r[0], r[1]): r for r in rows}
    for rf in ("2%", "5%", "10%"):
        # hilbert fragments less than morton under interval routing
        assert by[(rf, "hilbert-sfc")][2] <= by[(rf, "morton-sfc")][2] * 1.3
