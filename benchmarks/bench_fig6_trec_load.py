"""Figure 6 — load distribution on the TREC-like corpus (with LB).

The paper's point: the greedy method maps a large number of unrelated
documents to the same point near the upper boundary of the index space —
the locality-preserving hash sends them all to a *single key*, and "the load
balancing mechanism can not divide the index entries associated with a
single key", so entries stay concentrated on few nodes even after balancing;
k-means spreads them far better.
"""


from benchmarks.conftest import bench_overrides, run_once
from repro.eval.experiments import figure6_config
from repro.eval.report import format_load_distribution
from repro.eval.runner import ExperimentResult, build_bundle, run_scheme
from repro.obs import Observability, format_hotspot_report, gauge_vector, hotspot_report
from repro.obs.load import STORED_ENTRIES_GAUGE


def test_figure6_trec_load(benchmark, save_result, save_metrics):
    cfg = figure6_config(**bench_overrides(range_factors=(0.05,)))
    bundle = build_bundle(cfg)
    obs = Observability(metrics=True)

    def run():
        result = ExperimentResult(config=cfg)
        for i, scheme in enumerate(cfg.schemes):
            result.schemes.append(run_scheme(cfg, scheme, bundle, seed_offset=i, obs=obs))
        return result

    result = run_once(benchmark, run)

    greedy = result.scheme("Greedy-10")
    kmean = result.scheme("Kmean-10")
    n_docs = bundle.dataset.shape[0]
    lines = [
        "Figure 6 — TREC-like corpus load distribution (sorted, with LB)",
        f"documents {n_docs}, nodes {cfg.n_nodes}",
        "paper reference: greedy stays concentrated on few nodes even with LB; "
        "k-means spreads the index",
        "",
        format_load_distribution(result, top_n=10),
        "",
    ]
    for s in result.schemes:
        loads = gauge_vector(obs.registry, STORED_ENTRIES_GAUGE,
                             match={"scheme": s.scheme.label})
        lines.append(format_hotspot_report(
            hotspot_report(loads), title=f"[{s.scheme.label}]"))
    save_result("figure6", "\n".join(lines))
    save_metrics("figure6", obs.registry)

    # the figure's distributions come straight from the registry gauge
    for s in result.schemes:
        loads = gauge_vector(obs.registry, STORED_ENTRIES_GAUGE,
                             match={"scheme": s.scheme.label})
        assert loads.sum() == s.load_distribution.sum()

    # The paper's qualitative claim: greedy's distribution is far more
    # concentrated than k-means' (higher gini / fewer loaded nodes).
    assert greedy.load_stats["gini"] >= kmean.load_stats["gini"] - 0.05
    assert greedy.load_stats["max"] >= kmean.load_stats["max"]
    # no entries lost either way
    assert greedy.load_distribution.sum() == n_docs
    assert kmean.load_distribution.sum() == n_docs
