"""Figure 4 — load distribution on nodes (synthetic dataset, with LB).

Sorts per-node entry counts in decreasing order after dynamic load balancing
for every landmark scheme.  The paper reports an even distribution with the
maximally loaded node holding only 97 entries (at 1e5 entries over 1740
nodes, i.e. ~1.7x the mean of ~57).  At bench scale the comparable claim is
max/mean staying small.
"""


from benchmarks.conftest import bench_overrides, run_once
from repro.eval.experiments import figure4_config
from repro.eval.report import format_load_distribution
from repro.eval.runner import build_bundle, run_scheme
from repro.eval.runner import ExperimentResult
from repro.obs import Observability, format_hotspot_report, gauge_vector, hotspot_report
from repro.obs.load import STORED_ENTRIES_GAUGE


def test_figure4_load_distribution(benchmark, save_result, save_metrics):
    cfg = figure4_config(**bench_overrides(range_factors=(0.05,)))
    bundle = build_bundle(cfg)
    # per-node loads land in the registry's node_stored_entries gauge (one
    # label per scheme); the figure below reads them back from there
    obs = Observability(metrics=True)

    def run():
        result = ExperimentResult(config=cfg)
        for i, scheme in enumerate(cfg.schemes):
            result.schemes.append(run_scheme(cfg, scheme, bundle, seed_offset=i, obs=obs))
        return result

    result = run_once(benchmark, run)

    mean_load = cfg.n_objects / cfg.n_nodes
    lines = [
        "Figure 4 — load distribution on nodes (sorted, with LB)",
        f"entries {cfg.n_objects}, nodes {cfg.n_nodes}, mean load {mean_load:.1f}",
        "paper reference: max load 97 at mean ~57 (1e5 entries / 1740 nodes), "
        "i.e. max/mean ~1.7",
        "",
        format_load_distribution(result, top_n=10),
        "",
    ]
    for s in result.schemes:
        loads = gauge_vector(obs.registry, STORED_ENTRIES_GAUGE,
                             match={"scheme": s.scheme.label})
        lines.append(format_hotspot_report(
            hotspot_report(loads), title=f"[{s.scheme.label}]"))
    save_result("figure4", "\n".join(lines))
    save_metrics("figure4", obs.registry)

    for s in result.schemes:
        # the rendered distribution is the registry gauge, resorted
        loads = gauge_vector(obs.registry, STORED_ENTRIES_GAUGE,
                             match={"scheme": s.scheme.label})
        assert loads.sum() == s.load_distribution.sum()
        # even distribution after balancing: max within a small factor of mean
        assert s.load_stats["max_over_mean"] < 4.0
        # all entries preserved
        assert s.load_distribution.sum() == cfg.n_objects
