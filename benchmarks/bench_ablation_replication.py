"""Ablation — entry replication and failure tolerance.

The paper leans on the DHT's fault tolerance but stores each index entry on
exactly one node; a crash silently loses that shard.  Storing each entry on
the owner plus ``r - 1`` successors makes crashes survivable at ``r x``
storage: the replicas carry keys outside their holder's ownership interval,
so the claimed-key-range filter keeps them invisible until the ring repairs
around the dead owner — zero-code-path failover.

Reports recall after a burst of crashes for replication factors 1–3.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.platform import IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import batch_exact_top_k
from repro.eval.metrics import merge_top_k, recall_at_k
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_NODES = 40
N_CRASHES = 4
N_QUERIES = 40


def test_replication_failure_tolerance(benchmark, save_result):
    cfg = ClusteredGaussianConfig(n_objects=4000, dim=12, n_clusters=5, deviation=8.0)
    data, centers = generate_clustered(cfg, seed=0)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    rng = np.random.default_rng(1)
    query_ids = rng.integers(0, cfg.n_objects, size=N_QUERIES)
    truth = batch_exact_top_k(data, metric, data[query_ids], k=10)
    radius = 0.08 * cfg.max_distance

    def measure(platform):
        proto, stats = platform.protocol("idx", top_k=10, range_filter=False)
        index = platform.indexes["idx"]
        nodes = platform.ring.nodes()
        platform.sim.reset()
        for qid, qi in enumerate(query_ids):
            proto.issue(index.make_query(data[qi], radius, qid=qid), nodes[qid % len(nodes)])
        platform.sim.run()
        recs = [
            recall_at_k(truth[qid], merge_top_k(stats.for_query(qid).entries, 10))
            for qid in range(N_QUERIES)
        ]
        return float(np.mean(recs))

    def run():
        rows = []
        for repl in (1, 2, 3):
            latency = king_latency_model(n_hosts=N_NODES, seed=0)
            ring = ChordRing.build(N_NODES, m=32, seed=0, latency=latency, pns=False)
            platform = IndexPlatform(ring)
            platform.create_index(
                "idx", data, metric, k=4, selection="kmeans",
                replication=repl, seed=0,
            )
            index = platform.indexes["idx"]
            storage = int(index.load_distribution().sum())
            before = measure(platform)
            # worst case: crash the most-loaded nodes
            for _ in range(N_CRASHES):
                victim = max(
                    (n for n in platform.ring.nodes() if n in index.shards),
                    key=lambda n: index.shards[n].load,
                )
                platform.fail_node(victim)
            surviving = len(index.surviving_object_ids())
            after = measure(platform)
            rows.append(
                [repl, storage, before, after, cfg.n_objects - surviving]
            )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_replication",
        f"Ablation — replication vs {N_CRASHES} node crashes ({N_NODES} nodes)\n"
        + format_table(
            ["replication", "stored entries", "recall before", "recall after", "entries lost"],
            rows,
        ),
    )
    r1, r2, r3 = rows
    assert r1[4] > 0  # unreplicated: crashes lose data
    assert r3[4] <= r2[4] <= r1[4]  # replication reduces loss
    assert r3[3] >= r1[3]  # and preserves recall
    assert r2[1] == 2 * r1[1]  # storage scales with the factor
