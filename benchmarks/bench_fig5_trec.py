"""Figure 5 — TREC-like document workload: Greedy-10 vs Kmean-10, with LB.

Sweeps the query range factor over the synthetic AP-like corpus under the
angular metric with dynamic load balancing enabled, reproducing the paper's
§4.3 comparison.

Paper headline: greedy achieves higher recall with lower cost below a ~1%
range factor (it maps queries and documents onto very few nodes), but from
1% to 20% k-means wins on both recall and routing cost — greedy's
document-drawn landmarks are nearly orthogonal to everything (distance
~pi/2) and cannot filter documents.
"""

from benchmarks.conftest import bench_overrides, run_once
from repro.eval.experiments import figure5_config
from repro.eval.report import format_sweep
from repro.eval.runner import run_experiment


def test_figure5_sweep(benchmark, save_result):
    cfg = figure5_config(**bench_overrides())
    result = run_once(benchmark, lambda: run_experiment(cfg))

    save_result(
        "figure5",
        "Figure 5 — TREC-like corpus, Greedy-10 vs Kmean-10 (with LB)\n"
        + format_sweep(
            result,
            metrics=(
                "recall",
                "hops",
                "response_time",
                "max_latency",
                "total_bytes",
                "query_messages",
                "index_nodes",
            ),
        ),
    )

    greedy = result.scheme("Greedy-10")
    kmean = result.scheme("Kmean-10")
    # Both schemes answer; recall non-trivial at the top of the sweep.
    assert greedy.rows[-1]["recall"] > 0.3
    assert kmean.rows[-1]["recall"] > 0.3
    # The paper's crossover: k-means matches or beats greedy at large range
    # factors on recall while using comparable-or-less bandwidth relative to
    # what it retrieves.
    assert kmean.rows[-1]["recall"] >= greedy.rows[-1]["recall"] - 0.1
