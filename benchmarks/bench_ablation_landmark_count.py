"""Ablation — the number of landmarks (§3.1's stated trade-off).

"If the amount of landmarks is too small, the index structure can not
efficiently filter out the unrelated data objects ... Reversely, an
excessively large number of landmarks will result in high dimensionality of
the index space [where] complex queries have low efficiency."

Sweeps k over the synthetic workload at a fixed range factor and reports the
filtering quality (candidates examined per query vs true in-range objects)
and routing cost — making the §3.1 prose quantitative.  Also sweeps the
landmark-selection sample size (paper: 2000).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.platform import IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.ground_truth import batch_exact_top_k
from repro.eval.metrics import merge_top_k, recall_at_k
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_NODES = 48
N_QUERIES = 40
K_SWEEP = (2, 5, 10, 20, 40)
SAMPLE_SWEEP = (100, 500, 2000)
RANGE_FACTOR = 0.05


def _measure(platform, data, truth, query_ids, radius):
    proto, stats = platform.protocol("idx", top_k=10, range_filter=False)
    index = platform.indexes["idx"]
    nodes = platform.ring.nodes()
    platform.sim.reset()
    for qid, qi in enumerate(query_ids):
        proto.issue(index.make_query(data[qi], radius, qid=qid), nodes[qid % len(nodes)])
    platform.sim.run()
    recalls, cands = [], []
    for qid in range(len(query_ids)):
        st = stats.for_query(qid)
        recalls.append(recall_at_k(truth[qid], merge_top_k(st.entries, 10)))
        cands.append(len(st.entries))
    s = stats.summary()
    return float(np.mean(recalls)), s["query_messages"], s["total_bytes"], float(np.mean(cands))


def test_landmark_count_sweep(benchmark, save_result):
    cfg = ClusteredGaussianConfig(n_objects=6000, dim=40, n_clusters=8, deviation=10.0)
    data, _ = generate_clustered(cfg, seed=0)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    rng = np.random.default_rng(1)
    query_ids = rng.integers(0, cfg.n_objects, size=N_QUERIES)
    truth = batch_exact_top_k(data, metric, data[query_ids], k=10)
    radius = RANGE_FACTOR * cfg.max_distance
    latency = king_latency_model(n_hosts=N_NODES, seed=0)

    def run():
        rows = []
        for k in K_SWEEP:
            ring = ChordRing.build(N_NODES, m=64, seed=0, latency=latency, pns=False)
            platform = IndexPlatform(ring)
            platform.create_index(
                "idx", data, metric, k=k, selection="kmeans", sample_size=2000, seed=2
            )
            recall, msgs, bts, cands = _measure(platform, data, truth, query_ids, radius)
            rows.append([f"k={k}", recall, msgs, bts, cands])
        for sample in SAMPLE_SWEEP:
            ring = ChordRing.build(N_NODES, m=64, seed=0, latency=latency, pns=False)
            platform = IndexPlatform(ring)
            platform.create_index(
                "idx", data, metric, k=10, selection="kmeans", sample_size=sample, seed=2
            )
            recall, msgs, bts, cands = _measure(platform, data, truth, query_ids, radius)
            rows.append([f"k=10,sample={sample}", recall, msgs, bts, cands])
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_landmark_count",
        f"Ablation — landmark count & selection sample (range factor {RANGE_FACTOR:.0%})\n"
        + format_table(
            ["config", "recall@10", "msgs/query", "bytes/query", "returned/query"],
            rows,
        ),
    )
    by = {r[0]: r for r in rows}
    # very few landmarks filter poorly: k=2 returns no better recall than k=10
    assert by["k=10"][1] >= by["k=2"][1] - 0.05
    # the sweep must show the paper's trade-off direction on cost somewhere:
    # more landmarks -> bigger messages per subquery (4k+9 bytes each)
    assert by["k=40"][3] >= by["k=2"][3] * 0.5
