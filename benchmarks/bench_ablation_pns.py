"""Ablation — Chord-PNS versus plain Chord fingers.

The paper runs Chord with proximity neighbour selection [9]: each node fills
finger level ``i`` with the *physically closest* node whose identifier lies
in ``[n + 2^i, n + 2^(i+1))``.  PNS leaves hop counts unchanged (any
candidate is a valid finger) but cuts per-hop latency, so response time and
maximum latency drop.
"""

import numpy as np

from benchmarks.conftest import BENCH_NODES, run_once
from repro.core.platform import IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.dht.ring import ChordRing
from repro.eval.report import format_table
from repro.metric.vector import EuclideanMetric
from repro.sim.king import king_latency_model

N_QUERIES = 60


def test_pns_ablation(benchmark, save_result):
    cfg = ClusteredGaussianConfig(n_objects=5000, dim=20, n_clusters=6, deviation=10.0)
    data, _ = generate_clustered(cfg, seed=0)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    latency = king_latency_model(n_hosts=BENCH_NODES, seed=0)
    rng = np.random.default_rng(1)
    query_ids = rng.integers(0, cfg.n_objects, size=N_QUERIES)
    radius = 0.05 * cfg.max_distance

    def run():
        rows = []
        for pns in (False, True):
            ring = ChordRing.build(BENCH_NODES, m=32, seed=0, latency=latency, pns=pns)
            platform = IndexPlatform(ring)
            platform.create_index(
                "idx", data, metric, k=5, selection="kmeans", sample_size=800, seed=1
            )
            proto, stats = platform.protocol("idx")
            nodes = ring.nodes()
            index = platform.indexes["idx"]
            for qid, qi in enumerate(query_ids):
                proto.issue(index.make_query(data[qi], radius, qid=qid), nodes[qid % len(nodes)])
            platform.sim.run()
            s = stats.summary()
            rows.append(
                [
                    "PNS" if pns else "plain",
                    s["hops"],
                    s["response_time"],
                    s["max_latency"],
                    s["query_messages"],
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    save_result(
        "ablation_pns",
        "Ablation — proximity neighbour selection (Chord-PNS) vs plain fingers\n"
        + format_table(
            ["fingers", "hops", "response_time", "max_latency", "messages"], rows
        ),
    )
    plain, pns = rows
    # PNS reduces time-to-answer without changing the message economy much.
    assert pns[3] <= plain[3] * 1.05  # max latency no worse
    assert pns[2] <= plain[2] * 1.10  # response time no worse
