#!/usr/bin/env python
"""Docker Compose crash-recovery smoke (docs/deployment.md).

Drives the full acceptance cycle against the containers defined in
``deploy/docker-compose.yml`` (assumed already up):

    insert a workload -> exact-recall range queries -> record the victim's
    shard digest -> ``docker compose kill`` it (SIGKILL: no flush, no
    atexit) -> survivors re-converge -> restart the container on the same
    volume -> digest over RPC must be identical -> recall must be exact.

Run from the repository root with the stack up:

    docker compose -f deploy/docker-compose.yml up --build -d
    PYTHONPATH=src python deploy/smoke.py
    docker compose -f deploy/docker-compose.yml down -v

Exit code 0 on success; any assertion failure or timeout is non-zero.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.check.invariants import check_live_cluster
from repro.core.index_space import IndexSpaceBounds
from repro.core.lph import lp_hash_batch
from repro.net.cluster import ClusterClient
from repro.net.transport import RpcError

COMPOSE = ["docker", "compose", "-f",
           str(Path(__file__).resolve().parent / "docker-compose.yml")]
ADDRS = [f"127.0.0.1:{9100 + i}" for i in range(4)]
VICTIM = 2
M, K = 32, 2
N_ENTRIES, N_QUERIES = 256, 8


def compose(*args: str) -> None:
    subprocess.run([*COMPOSE, *args], check=True)


async def wait_up(client: ClusterClient, addr: str, timeout: float = 60.0) -> dict:
    deadline = client.transport.now + timeout
    while client.transport.now < deadline:
        try:
            return await client.status(addr)
        except RpcError:
            await asyncio.sleep(0.5)
    raise TimeoutError(f"node at {addr} did not come up within {timeout}s")


async def main() -> int:
    bounds = IndexSpaceBounds.uniform(K, 0.0, 1000.0)
    rng = np.random.default_rng(0)
    points = rng.uniform(0.0, 1000.0, size=(N_ENTRIES, K))
    ids = np.arange(N_ENTRIES, dtype=np.int64)
    keys = lp_hash_batch(points, bounds, M)
    rects = []
    for _ in range(N_QUERIES):
        center = rng.uniform(150.0, 850.0, size=K)
        half = rng.uniform(40.0, 150.0, size=K)
        rects.append((center - half, center + half))

    def brute(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return np.sort(ids[np.all((points >= lo) & (points <= hi), axis=1)])

    client = ClusterClient()
    try:
        await client.start()
        for addr in ADDRS:
            await wait_up(client, addr)
        assert await client.wait_converged(ADDRS, timeout=60.0), "initial convergence"
        print(f"ring converged: {len(ADDRS)} nodes")

        accepted = await client.insert(ADDRS[0], keys, points, ids)
        assert accepted == N_ENTRIES, f"accepted {accepted}/{N_ENTRIES}"
        for lo, hi in rects:
            got = np.sort(await client.query(ADDRS[1], lo, hi))
            assert np.array_equal(got, brute(lo, hi)), "pre-kill recall"
        print(f"inserted {accepted} entries, {N_QUERIES} queries exact")

        digest_before = (await client.status(ADDRS[VICTIM]))["digest"]
        compose("kill", "-s", "SIGKILL", f"node-{VICTIM}")
        print(f"SIGKILLed node-{VICTIM} (digest {digest_before:#x})")

        survivors = [a for i, a in enumerate(ADDRS) if i != VICTIM]
        assert await client.wait_converged(survivors, timeout=60.0), "survivor ring"
        statuses = [await client.status(a) for a in survivors]
        assert check_live_cluster(statuses, M).ok
        print("survivors re-converged")

        compose("up", "-d", f"node-{VICTIM}")
        recovered = await wait_up(client, ADDRS[VICTIM])
        assert recovered["digest"] == digest_before, (
            f"digest {recovered['digest']:#x} != {digest_before:#x}")
        assert await client.wait_converged(ADDRS, timeout=60.0), "rejoin convergence"
        statuses = [await client.status(a) for a in ADDRS]
        assert check_live_cluster(statuses, M, expected_entries=N_ENTRIES).ok
        for lo, hi in rects:
            got = np.sort(await client.query(ADDRS[VICTIM], lo, hi))
            assert np.array_equal(got, brute(lo, hi)), "post-rejoin recall"
        print(f"node-{VICTIM} recovered bit-identically; recall exact — smoke OK")
        return 0
    finally:
        await client.close()


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
