"""Driving the evaluation harness programmatically.

Shows the pieces the benchmark suite is built from: experiment configs,
single runs, multi-seed replication with mean ± std, report rendering, and
the installation self-check.  This is the entry point to copy when designing
a *new* experiment (see docs/extending.md).

Run:  python examples/experiment_harness.py
"""

from repro.eval.report import format_sweep, format_table
from repro.eval.runner import ExperimentConfig, Scheme, run_experiment, run_replicated
from repro.eval.validate import self_check


def main() -> None:
    # -- 0. self-check ---------------------------------------------------------
    print(self_check(seed=0))

    # -- 1. a small custom experiment -------------------------------------------
    cfg = ExperimentConfig(
        kind="synthetic",
        n_nodes=24,
        n_objects=2000,
        n_queries=30,
        sample_size=300,
        schemes=(Scheme("Greedy-4", "greedy", 4), Scheme("Kmean-4", "kmeans", 4)),
        range_factors=(0.02, 0.05, 0.10),
        load_balance=False,
        pns=False,
        seed=7,
    )
    result = run_experiment(cfg)
    print("\n== single run ==")
    print(format_sweep(result, metrics=("recall", "total_bytes", "index_nodes")))

    # -- 2. replicate over seeds for error bars -----------------------------------
    rep = run_replicated(cfg, n_seeds=3)
    print("\n== 3-seed replication (mean ± std of recall) ==")
    rows = []
    for i, rf in enumerate(cfg.range_factors):
        row = [f"{rf*100:g}%"]
        for scheme in cfg.schemes:
            mu = rep.mean[scheme.label]["recall"][i]
            sd = rep.std[scheme.label]["recall"][i]
            row.append(f"{mu:.2f}±{sd:.2f}")
        rows.append(row)
    print(format_table(["range%"] + [s.label for s in cfg.schemes], rows))


if __name__ == "__main__":
    main()
