"""Approximate time-series search (paper §2, motivating example 4).

Fixed-length time series are vectors; under the ``L_1`` (Hamilton) metric
they plug straight into the landmark platform.  Series are synthesised from
template shapes (trend + seasonality) with autocorrelated noise, so each
query has a genuine family of near neighbours.

Also demonstrates the query *trace*: the embedded-tree execution of one
range query, printed step by step.

Run:  python examples/timeseries_search.py
"""

import numpy as np

from repro import ChordRing, IndexPlatform, ManhattanMetric
from repro.core.trace import TracingProtocol
from repro.datasets.timeseries import TimeSeriesFamilyConfig, generate_timeseries
from repro.sim.king import king_latency_model
from repro.sim.stats import StatsCollector


def main() -> None:
    cfg = TimeSeriesFamilyConfig(n_series=800, n_templates=8, length=48, noise=0.15)
    series, family = generate_timeseries(cfg, seed=0)
    print(f"dataset: {len(series)} series of length {cfg.length}, {cfg.n_templates} shape families")

    metric = ManhattanMetric(box=(cfg.low, cfg.high), dim=cfg.length)
    latency = king_latency_model(n_hosts=32, seed=0)
    ring = ChordRing.build(32, m=28, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    platform.create_index(
        "series", series, metric, k=4, selection="kmeans", sample_size=300, seed=1
    )

    rng = np.random.default_rng(2)
    for trial in range(3):
        qi = int(rng.integers(0, cfg.n_series))
        radius = 0.05 * metric.upper_bound
        results = platform.query("series", series[qi], radius=radius, top_k=8,
                                 range_filter=False)
        own = sum(family[e.object_id] == family[qi] for e in results)
        print(
            f"query {trial}: series #{qi} (family {family[qi]}): "
            f"{own}/{len(results)} of top {len(results)} from the same family"
        )

    # -- trace one query through the embedded tree -----------------------------
    stats = StatsCollector()
    proto = TracingProtocol(
        platform.sim, platform.indexes["series"], stats, latency=platform.latency
    )
    platform.sim.reset()
    q = platform.indexes["series"].make_query(series[0], 0.03 * metric.upper_bound, qid=0)
    proto.issue(q, ring.nodes()[0])
    platform.sim.run()
    trace = proto.traces[0]
    print(
        f"\ntraced query: {len(trace.routes())} routing steps, "
        f"{len(trace.refines())} refinements, {len(trace.solves())} local solves "
        f"on {len(trace.nodes_visited())} nodes"
    )
    print(trace.render(m=28, limit=15))


if __name__ == "__main__":
    main()
