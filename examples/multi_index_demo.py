"""Multiple indexes of different data types on ONE overlay — the paper's
headline feature: "our architecture can provide a general platform to support
arbitrary number of indexes on different data types ... without maintaining
multiple individual routing structures".

One Chord ring simultaneously hosts:

* a Euclidean vector index (clustered 12-d points),
* an edit-distance index over DNA-like strings (via the d/(1+d) transform),
* an angular-distance index over sparse document vectors,

each with its own landmark space and rotation offset, all routed by the same
DHT links.

Run:  python examples/multi_index_demo.py
"""


from repro import (
    ChordRing,
    EuclideanMetric,
    IndexPlatform,
    SparseAngularMetric,
)
from repro.datasets.documents import SyntheticCorpusConfig, generate_corpus
from repro.datasets.strings import SequenceFamilyConfig, generate_sequences
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.metric.strings import EditDistanceMetric
from repro.metric.transforms import BoundedMetric
from repro.sim.king import king_latency_model


def main() -> None:
    latency = king_latency_model(n_hosts=48, seed=0)
    ring = ChordRing.build(48, m=32, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)

    # -- vectors -------------------------------------------------------------
    vcfg = ClusteredGaussianConfig(n_objects=2000, dim=12, n_clusters=5, deviation=6.0)
    vectors, _ = generate_clustered(vcfg, seed=1)
    platform.create_index(
        "vectors", vectors, EuclideanMetric(box=(0, 100), dim=12),
        k=5, selection="kmeans", rotation=True, seed=1,
    )

    # -- strings ---------------------------------------------------------------
    scfg = SequenceFamilyConfig(n_sequences=400, n_families=8, length=40)
    seqs, _ = generate_sequences(scfg, seed=2)
    platform.create_index(
        "dna", seqs, BoundedMetric(EditDistanceMetric()),
        k=4, selection="kmedoids", boundary="metric", rotation=True, seed=2,
    )

    # -- documents ------------------------------------------------------------
    corpus = generate_corpus(SyntheticCorpusConfig().scaled(0.005), seed=3)
    platform.create_index(
        "docs", corpus.tfidf, SparseAngularMetric(),
        k=6, selection="kmeans", boundary="sample", rotation=True, seed=3,
    )

    print(f"one overlay ({len(ring)} nodes), {len(platform.indexes)} indexes:")
    for name, idx in platform.indexes.items():
        loads = idx.load_distribution()
        print(
            f"  {name:8s}: k={idx.k}, {idx.total_entries():6d} entries, "
            f"rotation φ={idx.rotation % 1000:>3d}..., max node load {loads.max()}"
        )

    # -- query each index through the same DHT links ----------------------------
    print("\nqueries:")
    rv = platform.query("vectors", vectors[0], radius=40.0, top_k=5)
    print(f"  vectors: top hit object {rv[0].object_id} at d={rv[0].distance:.2f}")
    rs = platform.query("dna", seqs[0], radius=0.9, top_k=5)
    print(f"  dna    : top hit object {rs[0].object_id} at d'={rs[0].distance:.3f}")
    rd = platform.query("docs", corpus.tfidf[0], radius=1.3, top_k=5)
    print(f"  docs   : top hit object {rd[0].object_id} at angle={rd[0].distance:.3f} rad")

    total = platform.load_distribution()
    print(
        f"\ncombined load: total {total.sum()} entries, "
        f"max per node {total.max()}, mean {total.mean():.1f}"
    )


if __name__ == "__main__":
    main()
