"""Document similarity search: the paper's TREC scenario (§4.3) end to end.

Builds a synthetic AP-newswire-like corpus (TF/IDF term vectors under the
angular metric), indexes it with both landmark schemes the paper compares —
greedy (Algorithm 1) and k-means — and shows why k-means wins on sparse
high-dimensional text: greedy's document-drawn landmarks are orthogonal to
nearly everything and collapse the index onto a handful of nodes.

Also demonstrates pseudo-relevance-feedback query expansion (the paper's §6
future-work item).

Run:  python examples/document_search.py
"""

import numpy as np

from repro import ChordRing, IndexPlatform, SparseAngularMetric
from repro.datasets.documents import SyntheticCorpusConfig, generate_corpus, generate_topics
from repro.eval.expansion import expand_query
from repro.eval.ground_truth import exact_top_k
from repro.eval.metrics import gini_coefficient
from repro.sim.king import king_latency_model


def main() -> None:
    # -- corpus ----------------------------------------------------------------
    cfg = SyntheticCorpusConfig().scaled(0.02)  # ~3.1k docs, ~4.7k terms
    corpus = generate_corpus(cfg, seed=0)
    metric = SparseAngularMetric()
    print(
        f"corpus: {corpus.n_docs} documents, {corpus.n_distinct_terms} distinct terms, "
        f"mean vector size {corpus.doc_sizes.mean():.1f}"
    )

    # -- overlay + two indexes ----------------------------------------------------
    latency = king_latency_model(n_hosts=64, seed=0)
    ring = ChordRing.build(64, m=32, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    for name, scheme in (("greedy", "greedy"), ("kmeans", "kmeans")):
        platform.create_index(
            name, corpus.tfidf, metric, k=8, selection=scheme,
            sample_size=800, boundary="sample", seed=1,
        )
        loads = platform.indexes[name].load_distribution()
        print(
            f"index[{scheme:6s}]: entries on {np.count_nonzero(loads):3d} nodes, "
            f"max load {loads.max():5d}, gini {gini_coefficient(loads):.2f}"
        )

    # -- topic queries -----------------------------------------------------------
    topics = generate_topics(corpus, n_topics=5, seed=2)
    radius = 0.2 * metric.upper_bound
    for t in range(topics.shape[0]):
        q = topics[t]
        truth = exact_top_k(corpus.tfidf, metric, q, k=10)
        print(f"\ntopic {t}: {q.nnz} terms, radius {radius:.3f} rad")
        for name in ("greedy", "kmeans"):
            res = platform.query(name, q, radius=radius, top_k=10, range_filter=False)
            got = {e.object_id for e in res}
            recall = len(got & set(int(x) for x in truth)) / 10
            print(f"   {name:6s}: {len(res):2d} results, recall@10 {recall:.0%}")

        # -- query expansion (future work §6) ---------------------------------
        res = platform.query("kmeans", q, radius=radius, top_k=5, range_filter=False)
        if res:
            feedback = corpus.tfidf[[e.object_id for e in res]]
            expanded = expand_query(q, feedback, n_terms=8)
            res2 = platform.query("kmeans", expanded, radius=radius, top_k=10, range_filter=False)
            got2 = {e.object_id for e in res2}
            recall2 = len(got2 & set(int(x) for x in truth)) / 10
            print(f"   kmeans + expansion ({expanded.nnz} terms): recall@10 {recall2:.0%}")


if __name__ == "__main__":
    main()
