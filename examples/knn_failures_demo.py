"""Exact k-NN search, dynamic updates and crash tolerance in one scenario.

Extensions beyond the paper's evaluation (DESIGN.md §5b):

1. **k-NN with unknown radius** — the radius-doubling loop certifies the
   exact 10 nearest neighbours while touching a handful of nodes;
2. **dynamic datasets** — entries inserted and deleted at runtime through
   the overlay (the paper's §6 future-work item);
3. **replication + failure injection** — with entries on 2 successors the
   index answers exactly through a node crash, with zero failover code in
   the query path.

Run:  python examples/knn_failures_demo.py
"""


from repro import ChordRing, EuclideanMetric, IndexPlatform
from repro.core.knn import knn_search
from repro.core.updates import UpdateProtocol
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.eval.ground_truth import exact_top_k
from repro.sim.king import king_latency_model


def main() -> None:
    cfg = ClusteredGaussianConfig(n_objects=3000, dim=12, n_clusters=6, deviation=6.0)
    data, _ = generate_clustered(cfg, seed=0)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)

    latency = king_latency_model(n_hosts=40, seed=0)
    ring = ChordRing.build(40, m=32, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    index = platform.create_index(
        "vecs", data, metric, k=4, selection="kmeans", replication=2, seed=1
    )
    print(
        f"indexed {index.total_entries()} vectors on {len(ring)} nodes "
        f"(replication 2 -> {index.load_distribution().sum()} stored entries)"
    )

    # -- 1. exact k-NN ---------------------------------------------------------
    qi = 7
    res = knn_search(platform, "vecs", data[qi], k=10)
    truth = exact_top_k(data, metric, data[qi], 10)
    match = set(res.object_ids.tolist()) == set(int(t) for t in truth)
    print(
        f"\nkNN(10) of object #{qi}: {res.rounds} rounds, final radius "
        f"{res.final_radius:.1f}, {res.index_nodes} nodes touched, "
        f"exact={res.exact}, matches brute force={match}"
    )

    # -- 2. dynamic updates -------------------------------------------------------
    up = UpdateProtocol(index)
    up.delete(int(res.object_ids[1]))  # remove the 2nd-nearest neighbour
    res2 = knn_search(platform, "vecs", data[qi], k=10)
    print(
        f"after deleting neighbour #{res.object_ids[1]}: "
        f"it {'is GONE from' if res.object_ids[1] not in res2.object_ids else 'is still in'} the top-10"
    )
    up.insert(int(res.object_ids[1]))
    res3 = knn_search(platform, "vecs", data[qi], k=10)
    print(
        f"after re-inserting: top-10 restored = "
        f"{set(res3.object_ids.tolist()) == set(res.object_ids.tolist())} "
        f"(update cost: {up.stats.messages} msgs, {up.stats.mean_hops:.1f} hops/op)"
    )

    # -- 3. crash tolerance ----------------------------------------------------------
    victim = max(index.shards, key=lambda n: index.shards[n].load)
    print(f"\ncrashing the most loaded node ({victim.name}, {index.shards[victim].load} entries)...")
    platform.fail_node(victim)
    res4 = knn_search(platform, "vecs", data[qi], k=10)
    print(
        f"post-crash kNN exact={res4.exact}, matches pre-crash="
        f"{set(res4.object_ids.tolist()) == set(res3.object_ids.tolist())}"
    )
    lost = index.rebuild_from_shards()
    print(f"re-replication: {lost} entries lost, storage back to "
          f"{index.load_distribution().sum()} entries")


if __name__ == "__main__":
    main()
