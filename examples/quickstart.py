"""Quickstart: build a P2P similarity index over clustered vectors and query it.

This walks the full pipeline of the paper on a small scale:

1. build a Chord overlay (with proximity neighbour selection) on a synthetic
   King-like latency network;
2. create a landmark index over a clustered Euclidean dataset (k-means
   landmark selection, metric-space boundary);
3. issue near-neighbour queries and compare against exact search.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ChordRing, EuclideanMetric, IndexPlatform
from repro.datasets.synthetic import ClusteredGaussianConfig, generate_clustered
from repro.eval.ground_truth import exact_top_k
from repro.sim.king import king_latency_model


def main() -> None:
    # -- 1. the overlay -----------------------------------------------------
    n_nodes = 64
    latency = king_latency_model(n_hosts=n_nodes, seed=0)
    ring = ChordRing.build(n_nodes, m=32, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    print(f"overlay: {len(ring)} Chord nodes, m={ring.m}, PNS fingers")

    # -- 2. the dataset and index --------------------------------------------
    cfg = ClusteredGaussianConfig(n_objects=5000, dim=16, n_clusters=6, deviation=8.0)
    data, centers = generate_clustered(cfg, seed=1)
    metric = EuclideanMetric(box=(cfg.low, cfg.high), dim=cfg.dim)
    index = platform.create_index(
        "vectors", data, metric, k=5, selection="kmeans", sample_size=1000, seed=2
    )
    loads = index.load_distribution()
    print(
        f"index: {index.total_entries()} entries over {np.count_nonzero(loads)} nodes "
        f"(max load {loads.max()}, mean {loads.mean():.1f})"
    )

    # -- 3. query ---------------------------------------------------------------
    rng = np.random.default_rng(3)
    for trial in range(3):
        qi = int(rng.integers(0, cfg.n_objects))
        radius = 0.05 * cfg.max_distance
        results = platform.query(
            "vectors", data[qi], radius=radius, top_k=10, range_filter=False
        )
        truth = exact_top_k(data, metric, data[qi], k=10)
        got = {e.object_id for e in results}
        recall = len(got & set(int(t) for t in truth)) / 10
        print(f"\nquery {trial}: object #{qi}, radius {radius:.1f}")
        for e in results[:5]:
            print(f"   object {e.object_id:5d}  distance {e.distance:8.3f}")
        print(f"   recall@10 vs exact search: {recall:.0%}")


if __name__ == "__main__":
    main()
