"""Similar-image search under the Hausdorff metric (paper §2 example 3).

Images are abstracted as 2-D feature-point sets (Huttenlocher et al. [14]);
the Hausdorff distance between point sets is a true metric and plugs straight
into the landmark platform.  Shapes are synthesised from jittered templates,
so each query has genuine near neighbours (same template family).

Run:  python examples/image_search.py
"""

import numpy as np

from repro import ChordRing, IndexPlatform
from repro.datasets.shapes import ShapeFamilyConfig, generate_shapes
from repro.metric.hausdorff import HausdorffMetric
from repro.sim.king import king_latency_model


def main() -> None:
    cfg = ShapeFamilyConfig(n_shapes=400, n_templates=8, points_per_shape=24, jitter=1.5)
    shapes, template = generate_shapes(cfg, seed=0)
    print(f"dataset: {len(shapes)} shapes from {cfg.n_templates} templates")

    metric = HausdorffMetric(box=(0.0, cfg.canvas), dim=2)

    latency = king_latency_model(n_hosts=32, seed=0)
    ring = ChordRing.build(32, m=28, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    platform.create_index(
        "shapes", shapes, metric, k=4, selection="greedy",
        sample_size=200, boundary="sample", seed=1,
    )

    rng = np.random.default_rng(2)
    for trial in range(3):
        qi = int(rng.integers(0, len(shapes)))
        results = platform.query("shapes", shapes[qi], radius=8.0, top_k=8)
        fams = [int(template[e.object_id]) for e in results]
        own = sum(f == template[qi] for f in fams)
        print(
            f"query {trial}: shape #{qi} (template {template[qi]}): "
            f"{len(results)} hits within Hausdorff 8.0, "
            f"{own}/{len(results)} same template"
        )
        for e in results[:4]:
            print(f"   shape {e.object_id:4d}  template {template[e.object_id]}  H={e.distance:6.2f}")


if __name__ == "__main__":
    main()
