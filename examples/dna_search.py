"""Similar-sequence search under the edit distance (paper §2 example 1).

The index platform is metric-generic: here the "black box" distance is the
Levenshtein edit distance over DNA-like strings.  Edit distance is unbounded,
so we apply the paper's ``d' = d/(1+d)`` transform (§3.1) to bound the index
space, and use k-medoids landmark selection (the black-box stand-in for
k-means — string centroids don't exist).

Run:  python examples/dna_search.py
"""

import numpy as np

from repro import ChordRing, IndexPlatform
from repro.datasets.strings import SequenceFamilyConfig, generate_sequences
from repro.metric.strings import EditDistanceMetric
from repro.metric.transforms import BoundedMetric
from repro.sim.king import king_latency_model


def main() -> None:
    cfg = SequenceFamilyConfig(n_sequences=600, n_families=12, length=50, mutation_rate=0.06)
    seqs, families = generate_sequences(cfg, seed=0)
    print(f"dataset: {len(seqs)} sequences, {cfg.n_families} mutation families")

    inner = EditDistanceMetric()
    metric = BoundedMetric(inner)  # d/(1+d), bounded by 1

    latency = king_latency_model(n_hosts=32, seed=0)
    ring = ChordRing.build(32, m=28, seed=0, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    platform.create_index(
        "dna", seqs, metric, k=4, selection="kmedoids",
        sample_size=300, boundary="metric", seed=1,
    )

    rng = np.random.default_rng(2)
    for trial in range(3):
        qi = int(rng.integers(0, len(seqs)))
        # search for sequences within 8 edits: transform the radius too.
        radius = BoundedMetric.to_bounded_radius(8.0)
        results = platform.query("dna", seqs[qi], radius=radius, top_k=8)
        print(f"\nquery {trial}: sequence #{qi} (family {families[qi]})")
        print(f"   {seqs[qi][:50]}")
        same_family = 0
        for e in results[:6]:
            edits = inner.distance(seqs[qi], seqs[e.object_id])
            fam = families[e.object_id]
            same_family += fam == families[qi]
            print(f"   #{e.object_id:4d}  family {fam:2d}  edits {edits:4.0f}")
        print(f"   {same_family}/{min(6, len(results))} hits from the query's own family")


if __name__ == "__main__":
    main()
