"""Load balancing in action (paper §3.4 / Figures 4 & 6).

Builds a deliberately skewed index (one tight data cluster, so most entries
hash into a narrow key range) and shows:

* the *static* mechanism — per-index rotation offsets spreading the hot arcs
  of several similarly-skewed indexes across the ring;
* the *dynamic* mechanism — heavy nodes recruiting light ones to rejoin at
  the split point of their key range (δ = 0, probing level 4, the paper's
  maximum-effect setting).

Run:  python examples/load_balancing_demo.py
"""

import numpy as np

from repro import ChordRing, EuclideanMetric, IndexPlatform, dynamic_load_migration
from repro.core.loadbalance import hotspot_overlap
from repro.eval.metrics import gini_coefficient
from repro.sim.king import king_latency_model


def skewed_data(rng, n=3000, dim=8):
    center = rng.uniform(40, 60, size=(1, dim))
    return np.clip(center + rng.normal(0, 3, size=(n, dim)), 0, 100)


def build_platform(rotation: bool, n_indexes: int = 3, seed: int = 0):
    rng = np.random.default_rng(seed)
    latency = king_latency_model(n_hosts=64, seed=seed)
    ring = ChordRing.build(64, m=32, seed=seed, latency=latency, pns=True)
    platform = IndexPlatform(ring)
    metric = EuclideanMetric(box=(0, 100), dim=8)
    for i in range(n_indexes):
        platform.create_index(
            f"index-{i}", skewed_data(rng), metric, k=4, selection="greedy",
            sample_size=400, rotation=rotation, seed=seed + i,
        )
    return platform


def main() -> None:
    # -- static: space-mapping rotation -------------------------------------
    print("== static load balancing: space-mapping rotation ==")
    for rotation in (False, True):
        platform = build_platform(rotation)
        overlap = hotspot_overlap(platform, top_fraction=0.1)
        total = platform.load_distribution()
        print(
            f"rotation={str(rotation):5s}: hot-node overlap across indexes "
            f"{overlap:.2f}, max total load {total.max()}, gini {gini_coefficient(total):.2f}"
        )

    # -- dynamic: load migration ----------------------------------------------
    print("\n== dynamic load balancing: migration (delta=0, P_l=4) ==")
    platform = build_platform(rotation=True, n_indexes=1, seed=7)
    before = np.sort(platform.load_distribution())[::-1]
    report = dynamic_load_migration(platform, delta=0.0, probe_level=4, seed=0)
    after = np.sort(platform.load_distribution())[::-1]
    print(f"before: max {before[0]}, top-5 {before[:5].tolist()}, gini {gini_coefficient(before):.2f}")
    print(f"after : max {after[0]}, top-5 {after[:5].tolist()}, gini {gini_coefficient(after):.2f}")
    print(
        f"{report.moves} node moves over {report.rounds} rounds, "
        f"{report.entries_migrated} entries migrated, {report.probes} load probes"
    )


if __name__ == "__main__":
    main()
